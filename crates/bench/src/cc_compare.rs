//! Congestion-control comparison at the HDratio level: the same lossy
//! user population measured under Reno, CUBIC, and BBR-lite senders.
//!
//! The paper notes (§3.2) that goodput depends on the congestion-control
//! algorithm and cites BBR; this experiment quantifies how much the
//! *measured* HD capability of identical users shifts when the server's
//! sender changes — an infrastructure knob the content provider controls,
//! unlike the users' access networks.

use edgeperf_core::{session_hdratio, HD_GOODPUT_BPS, MILLISECOND};
use edgeperf_netsim::PathState;
use edgeperf_tcp::{CcAlgorithm, TcpConfig};
use edgeperf_workload::WorkloadConfig;
use edgeperf_world::runner::simulate_session_with;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::Serialize;

/// One congestion-control algorithm's scorecard.
#[derive(Debug, Clone, Serialize)]
pub struct CcRow {
    /// Algorithm label.
    pub cc: String,
    /// Sessions that tested for HD goodput.
    pub tested: usize,
    /// Fraction of tested sessions with HDratio = 1.
    pub hd_full: f64,
    /// Mean HDratio across tested sessions.
    pub hd_mean: f64,
}

/// Run the comparison over `n` sessions per algorithm on a population of
/// marginal, lossy paths (where CC behaviour decides the outcome).
pub fn run(seed: u64, n: usize) -> Vec<CcRow> {
    [CcAlgorithm::Reno, CcAlgorithm::Cubic, CcAlgorithm::BbrLite]
        .into_iter()
        .map(|cc| {
            // Identical population per algorithm: same seed stream.
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let workload = WorkloadConfig::default();
            let mut tested = 0usize;
            let mut full = 0usize;
            let mut sum = 0.0;
            while tested < n {
                let rtt_ms = rng.gen_range(25.0..110.0);
                let bw = rng.gen_range(3.0e6..15.0e6);
                let loss = rng.gen_range(0.002..0.025);
                let state = PathState {
                    base_rtt: (rtt_ms * MILLISECOND as f64) as u64,
                    standing_queue: 0,
                    jitter_max: 3 * MILLISECOND,
                    bottleneck_bps: bw as u64,
                    loss,
                };
                let plan = workload.generate(&mut rng);
                let tcp = TcpConfig { cc, ..Default::default() };
                let obs = simulate_session_with(&plan, &state, tcp, &mut rng);
                if let Some(h) = session_hdratio(&obs, HD_GOODPUT_BPS).and_then(|v| v.hdratio()) {
                    tested += 1;
                    sum += h;
                    full += usize::from(h >= 1.0);
                }
            }
            CcRow {
                cc: format!("{cc:?}"),
                tested,
                hd_full: full as f64 / tested as f64,
                hd_mean: sum / tested as f64,
            }
        })
        .collect()
}

/// Render the table.
pub fn render(rows: &[CcRow]) -> String {
    let mut s =
        String::from("== Congestion control vs measured HD capability (lossy marginal paths) ==\n");
    s.push_str(&format!("{:<10} {:>8} {:>9} {:>9}\n", "sender", "tested", "HD=1", "mean"));
    for r in rows {
        s.push_str(&format!(
            "{:<10} {:>8} {:>9.2} {:>9.2}\n",
            r.cc, r.tested, r.hd_full, r.hd_mean
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbr_measures_more_hd_capability_under_loss() {
        let rows = run(9, 400);
        let get = |name: &str| rows.iter().find(|r| r.cc == name).unwrap();
        let reno = get("Reno");
        let cubic = get("Cubic");
        let bbr = get("BbrLite");
        assert!(bbr.hd_mean > reno.hd_mean, "BBR {} vs Reno {}", bbr.hd_mean, reno.hd_mean);
        assert!(
            cubic.hd_mean >= reno.hd_mean - 0.02,
            "CUBIC {} vs Reno {}",
            cubic.hd_mean,
            reno.hd_mean
        );
        // Sanity: all in (0, 1].
        for r in &rows {
            assert!(r.hd_mean > 0.2 && r.hd_mean <= 1.0, "{r:?}");
        }
    }
}
