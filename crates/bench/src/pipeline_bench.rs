//! Tracked performance baseline for the per-session hot path.
//!
//! The paper's pipeline ingests billions of session measurements per day;
//! in this reproduction the equivalent hot path is records → dataset. This
//! module measures that path against a faithful replica of the seed
//! implementation (std `HashMap` with SipHash, an entry lookup per record,
//! stable `partial_cmp` sorts, and a post-join serial rebuild) so the
//! speedup from the columnar/memo/FxHash work is a tracked number, not a
//! claim. `repro bench --bench-json BENCH_pipeline.json` regenerates the
//! committed baseline; CI runs the quick variant as a smoke test.
//!
//! Three ingestion paths over the same record stream, each measured
//! worker-emission → `Dataset`:
//!
//! - **baseline**: worker `Vec` shard pushes + join-time extend +
//!   seed-style `from_records` (std hasher, no memo, stable sorts).
//! - **from_records**: the same AoS shape but through today's
//!   [`Dataset::from_records`] (FxHash, group memo, unstable sorts).
//! - **columnar**: the shipping path — SoA shard pushes during the pass,
//!   zero-copy merge, exact-capacity scatter and one sort per cell at
//!   assembly.
//!
//! The headline `sessions_per_sec` compares baseline vs columnar (one
//! record = one measured session).

use edgeperf_analysis::figures::fig6_minrtt;
use edgeperf_analysis::sink::{RecordShard, RecordSink};
use edgeperf_analysis::{
    ColumnarShard, ColumnarSink, Dataset, GroupKey, SessionRecord, StreamingDataset,
};
use edgeperf_obs::Metrics;
use edgeperf_routing::Relationship;
use edgeperf_world::{
    run_study_observed, run_study_supervised, StudyConfig, SupervisorConfig, World, WorldConfig,
};
use serde::Serialize;
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

/// Knobs for the pipeline benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    /// World + session seed.
    pub seed: u64,
    /// Quick mode: smaller world, fewer timing iterations (CI smoke).
    pub quick: bool,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions { seed: 20190521, quick: false }
    }
}

/// Study/workload shape the benchmark ran with.
#[derive(Debug, Clone, Serialize)]
pub struct BenchConfig {
    /// Seed used for the world and sessions.
    pub seed: u64,
    /// Days simulated.
    pub days: u32,
    /// Sampled sessions per (group, window).
    pub sessions_per_group_window: u32,
    /// Fraction of countries kept.
    pub country_fraction: f64,
    /// Worker count (always 1: single-threaded numbers).
    pub parallelism: usize,
    /// Quick (CI smoke) mode.
    pub quick: bool,
    /// Timing iterations per measured path (best-of).
    pub iters: usize,
}

/// End-to-end study throughput (generation + simulation + ingestion).
#[derive(Debug, Clone, Serialize)]
pub struct StudyThroughput {
    /// Sessions simulated (including dropped-no-MinRTT ones).
    pub sessions_simulated: u64,
    /// Records emitted into the sink.
    pub records_emitted: u64,
    /// Wall time for the whole run at parallelism 1.
    pub elapsed_sec: f64,
    /// Simulated sessions per second, end to end.
    pub sessions_per_sec: f64,
    /// Distinct (group, window, rank) cells at the end of the run.
    pub peak_cells: usize,
}

/// Record-ingestion throughput: the tentpole before/after numbers.
#[derive(Debug, Clone, Serialize)]
pub struct IngestThroughput {
    /// Records in the measured stream.
    pub records: usize,
    /// Seed-style path: shard extend + std-HashMap rebuild (seconds).
    pub baseline_sec: f64,
    /// Seed-style records ingested per second.
    pub baseline_records_per_sec: f64,
    /// Today's `Dataset::from_records` over the same AoS stream (seconds).
    pub from_records_sec: f64,
    /// `from_records` records per second.
    pub from_records_records_per_sec: f64,
    /// Columnar path: SoA shard pushes + zero-copy assembly (seconds).
    pub columnar_sec: f64,
    /// Columnar records per second.
    pub columnar_records_per_sec: f64,
    /// baseline_sec / from_records_sec.
    pub speedup_from_records: f64,
    /// baseline_sec / columnar_sec — the headline.
    pub speedup_columnar: f64,
}

/// Bounded-memory sink cost and its agreement with the exact path.
#[derive(Debug, Clone, Serialize)]
pub struct StreamingAgreement {
    /// Time to ingest the stream into per-cell t-digests (seconds).
    pub ingest_sec: f64,
    /// Streaming-ingest records per second.
    pub records_per_sec: f64,
    /// Exact global MinRTT p50 (ms) from sorted samples.
    pub exact_minrtt_p50: f64,
    /// Streaming global MinRTT p50 (ms) from merged digests.
    pub streaming_minrtt_p50: f64,
    /// |exact − streaming| at p50.
    pub delta_p50: f64,
    /// Exact global MinRTT p80 (ms).
    pub exact_minrtt_p80: f64,
    /// Streaming global MinRTT p80 (ms).
    pub streaming_minrtt_p80: f64,
    /// |exact − streaming| at p80.
    pub delta_p80: f64,
}

/// Cost of the observability layer on the end-to-end study: the same
/// run with metrics disabled (a dead `Option` branch, no clock reads)
/// and with the full registry recording. Instrumentation is per-prefix
/// and per-worker — never per-record — so the enabled run must stay
/// within a few percent of the disabled one.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsOverhead {
    /// Best end-to-end study wall time with metrics disabled (seconds).
    pub study_sec_disabled: f64,
    /// Best same study with counters, histograms, and spans recording.
    pub study_sec_enabled: f64,
    /// Median of the paired per-iteration `enabled / disabled` ratios,
    /// as `(ratio − 1) · 100` (gate: |overhead| < 3%). Paired and
    /// warmed up so machine noise cancels instead of landing on one
    /// side and masquerading as a speedup.
    pub overhead_pct: f64,
}

/// Cost of the fault-tolerant supervisor on a fault-free study: the same
/// run driven by the raw work-stealing scheduler and by
/// `run_study_supervised` (per-prefix fragments, `catch_unwind`, in-order
/// merge, watchdog ticks — no faults injected, no checkpointing). The
/// supervision machinery is per-prefix, never per-record, so the
/// supervised run must stay within a few percent of the raw one.
#[derive(Debug, Clone, Serialize)]
pub struct SupervisorOverhead {
    /// Best end-to-end study wall time on the raw scheduler (seconds).
    pub study_sec_raw: f64,
    /// Best same-study wall time under the supervisor, fault-free.
    pub study_sec_supervised: f64,
    /// Median of the paired per-iteration `supervised / raw` ratios,
    /// as `(ratio − 1) · 100` (target: < 3%). Paired so slow clock
    /// drift on a shared machine cancels instead of landing on one side.
    pub overhead_pct: f64,
}

/// Headline before/after pair the acceptance gate reads.
#[derive(Debug, Clone, Serialize)]
pub struct Headline {
    /// Sessions ingested per second on the seed-style path.
    pub sessions_per_sec_before: f64,
    /// Sessions ingested per second on the columnar path.
    pub sessions_per_sec_after: f64,
    /// after / before (target: ≥ 2 at parallelism 1).
    pub speedup: f64,
}

/// The full report written to `BENCH_pipeline.json`.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineBenchReport {
    /// Workload shape.
    pub config: BenchConfig,
    /// End-to-end study throughput at parallelism 1.
    pub study: StudyThroughput,
    /// Record-ingestion before/after.
    pub ingest: IngestThroughput,
    /// Streaming-sink cost and exact-vs-streaming deltas.
    pub streaming: StreamingAgreement,
    /// Observability-layer cost on the end-to-end study.
    pub metrics_overhead: MetricsOverhead,
    /// Fault-tolerance-layer cost on a fault-free end-to-end study.
    pub supervisor_overhead: SupervisorOverhead,
    /// The acceptance-gate numbers.
    pub headline: Headline,
}

// ---------------------------------------------------------------------
// Seed-replica baseline. This mirrors the pre-optimization pipeline
// byte-for-byte in shape: AoS shard extend, std `HashMap` (SipHash) with
// an `entry` lookup per record, nested rank/window cells, and stable
// `partial_cmp` sorts after the fact. It is kept here, out of the library
// crates, so the shipping code has exactly one implementation.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct BaselineAgg {
    min_rtt_ms: Vec<f64>,
    hdratio: Vec<f64>,
    bytes: u64,
    #[allow(dead_code)]
    relationship: Relationship,
    longer_path: bool,
    more_prepended: bool,
}

#[derive(Debug, Default)]
struct BaselineGroup {
    ranks: Vec<Vec<Option<BaselineAgg>>>,
    total_bytes: u64,
}

/// The seed's `Dataset::from_records`, reproduced for the baseline
/// measurement. Returns the cell count so the optimizer cannot discard
/// the work.
pub fn seed_style_from_records(records: &[SessionRecord], n_windows: usize) -> usize {
    let mut groups: HashMap<GroupKey, BaselineGroup> = HashMap::new();
    for r in records {
        assert!((r.window as usize) < n_windows, "window {} out of range", r.window);
        let g = groups.entry(r.group).or_default();
        let rank = r.route_rank as usize;
        while g.ranks.len() <= rank {
            g.ranks.push(vec![None; n_windows]);
        }
        let cell = g.ranks[rank][r.window as usize].get_or_insert_with(|| BaselineAgg {
            min_rtt_ms: Vec::new(),
            hdratio: Vec::new(),
            bytes: 0,
            relationship: r.relationship,
            longer_path: false,
            more_prepended: false,
        });
        cell.min_rtt_ms.push(r.min_rtt_ms);
        if let Some(h) = r.hdratio {
            cell.hdratio.push(h);
        }
        cell.bytes += r.bytes;
        cell.longer_path |= r.longer_path;
        cell.more_prepended |= r.more_prepended;
        g.total_bytes += r.bytes;
    }
    let mut cells = 0usize;
    for g in groups.values_mut() {
        for ws in &mut g.ranks {
            for cell in ws.iter_mut().flatten() {
                cell.min_rtt_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
                cell.hdratio.sort_by(|a, b| a.partial_cmp(b).unwrap());
                cells += 1;
            }
        }
    }
    cells
}

/// Replay a record stream through a worker's `Vec` shard, as the seed
/// pipeline's parallel section did.
pub fn vec_shard(records: &[SessionRecord]) -> Vec<SessionRecord> {
    let mut shard: Vec<SessionRecord> = Vec::new();
    for &r in records {
        RecordShard::push(&mut shard, r);
    }
    shard
}

/// The columnar ingestion path as a standalone function: one worker shard
/// (parallelism 1), zero-copy merge, columnar assembly.
pub fn columnar_ingest(records: &[SessionRecord], n_windows: usize) -> Dataset {
    let mut shard = ColumnarShard::default();
    for &r in records {
        shard.push(r);
    }
    let mut sink = ColumnarSink::new(n_windows);
    sink.merge_shard(shard);
    sink.into_dataset()
}

/// Streaming (t-digest) ingestion as a standalone function.
pub fn streaming_ingest(records: &[SessionRecord], n_windows: usize) -> StreamingDataset {
    let mut ds = StreamingDataset::new(n_windows);
    for &r in records {
        RecordShard::push(&mut ds, r);
    }
    ds.flush();
    ds
}

fn best_of<R>(iters: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    assert!(iters > 0);
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let r = black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("iters > 0"))
}

/// Run the full pipeline benchmark and assemble the report.
pub fn run(opts: &BenchOptions) -> PipelineBenchReport {
    run_observed(opts, &Metrics::disabled())
}

/// Run the benchmark and record phase spans, runner counters, scheduler
/// gauges, and sink gauges into `metrics` (when enabled) along the way.
/// The registry ends up holding exactly one end-to-end study run.
pub fn run_observed(opts: &BenchOptions, metrics: &Metrics) -> PipelineBenchReport {
    let (country_fraction, days, sessions, iters) =
        if opts.quick { (0.15, 1, 16, 2) } else { (0.3, 1, 48, 5) };
    let world =
        World::generate(WorldConfig { seed: opts.seed, country_fraction, ..Default::default() });
    let study = StudyConfig {
        seed: opts.seed ^ 0xABCD,
        days,
        sessions_per_group_window: sessions,
        parallelism: 1,
        ..Default::default()
    };
    let n_windows = study.n_windows() as usize;

    // End-to-end study at parallelism 1 through the shipping tee sink,
    // metrics disabled: the baseline side of the overhead comparison.
    let t0 = Instant::now();
    let mut sink: (Vec<SessionRecord>, ColumnarSink) = (Vec::new(), ColumnarSink::new(n_windows));
    let stats = run_study_observed(&world, &study, &mut sink, &Metrics::disabled());
    let elapsed = t0.elapsed().as_secs_f64();
    let (records, columnar) = sink;
    let peak_cells = columnar.cell_count();
    let totals = stats.total();
    let study_tp = StudyThroughput {
        sessions_simulated: totals.sessions_simulated,
        records_emitted: totals.records_emitted,
        elapsed_sec: elapsed,
        sessions_per_sec: totals.sessions_simulated as f64 / elapsed.max(1e-9),
        peak_cells,
    };

    // Record-ingestion before/after over the captured stream. Every path
    // is measured worker-emission → `Dataset`: the AoS paths pay the
    // worker `Vec` shard pushes, the join-time extend, and the serial
    // rebuild (exactly the seed pipeline); the columnar path pays its
    // shard pushes, the zero-copy merge, and assembly.
    let n = records.len();
    let (baseline_sec, base_cells) = best_of(iters, || {
        let shard = vec_shard(&records);
        let mut collected: Vec<SessionRecord> = Vec::new();
        RecordSink::merge_shard(&mut collected, shard);
        seed_style_from_records(&collected, n_windows)
    });
    let (from_records_sec, ds_a) = best_of(iters, || {
        let shard = vec_shard(&records);
        let mut collected: Vec<SessionRecord> = Vec::new();
        RecordSink::merge_shard(&mut collected, shard);
        Dataset::from_records(&collected, n_windows)
    });
    let (columnar_sec, ds_b) = best_of(iters, || columnar_ingest(&records, n_windows));
    assert_eq!(base_cells, ds_a.cell_count(), "baseline and from_records disagree on cells");
    assert_eq!(ds_a.cell_count(), ds_b.cell_count(), "columnar path disagrees on cells");
    let ingest = IngestThroughput {
        records: n,
        baseline_sec,
        baseline_records_per_sec: n as f64 / baseline_sec.max(1e-9),
        from_records_sec,
        from_records_records_per_sec: n as f64 / from_records_sec.max(1e-9),
        columnar_sec,
        columnar_records_per_sec: n as f64 / columnar_sec.max(1e-9),
        speedup_from_records: baseline_sec / from_records_sec.max(1e-9),
        speedup_columnar: baseline_sec / columnar_sec.max(1e-9),
    };

    // Streaming sink cost + agreement with the exact quantiles.
    let (stream_sec, stream_ds) = best_of(iters, || streaming_ingest(&records, n_windows));
    let (exact_cdf, _) = {
        let _sp = metrics.span("figures.fig6_minrtt");
        fig6_minrtt(&records)
    };
    let (stream_all, _) = stream_ds.minrtt_rollup();
    let e50 = exact_cdf.quantile(0.5);
    let e80 = exact_cdf.quantile(0.8);
    let s50 = stream_all.quantile(0.5);
    let s80 = stream_all.quantile(0.8);
    let streaming = StreamingAgreement {
        ingest_sec: stream_sec,
        records_per_sec: n as f64 / stream_sec.max(1e-9),
        exact_minrtt_p50: e50,
        streaming_minrtt_p50: s50,
        delta_p50: (e50 - s50).abs(),
        exact_minrtt_p80: e80,
        streaming_minrtt_p80: s80,
        delta_p80: (e80 - s80).abs(),
    };

    // Observability overhead: the same end-to-end study with the full
    // metrics layer recording. The caller's registry (or a throwaway one
    // when the caller's handle is disabled) takes the final repeat, so
    // it ends up holding exactly one run's worth of counters.
    let study_once = |m: &Metrics| {
        let mut sink: (Vec<SessionRecord>, ColumnarSink) =
            (Vec::new(), ColumnarSink::new(n_windows));
        let t = Instant::now();
        run_study_observed(&world, &study, &mut sink, m);
        t.elapsed().as_secs_f64()
    };
    // Run-to-run noise on a loaded machine is larger than the effect
    // being measured, and best-of-N puts all the bad luck on whichever
    // side never catches a quiet window (an earlier version reported a
    // −8% "overhead" that way). One untimed warm-up settles caches and
    // the allocator, then each iteration times disabled and enabled
    // back to back — alternating which runs first, so a monotone
    // machine trend (frequency scaling, cache warming) cancels instead
    // of always favouring the second side — and the overhead is the
    // median of the paired ratios; the reported seconds are still the
    // best of each.
    let study_iters = if opts.quick { 1 } else { 9 };
    let recorder = if metrics.is_enabled() { metrics.clone() } else { Metrics::enabled() };
    study_once(&Metrics::disabled());
    let mut disabled_sec = f64::INFINITY;
    let mut enabled_sec = f64::INFINITY;
    let mut metric_ratios = Vec::with_capacity(study_iters);
    for i in 0..study_iters {
        let m = if i + 1 == study_iters { recorder.clone() } else { Metrics::enabled() };
        let (d, e) = if i % 2 == 0 {
            let d = study_once(&Metrics::disabled());
            (d, study_once(&m))
        } else {
            let e = study_once(&m);
            (study_once(&Metrics::disabled()), e)
        };
        disabled_sec = disabled_sec.min(d);
        enabled_sec = enabled_sec.min(e);
        metric_ratios.push(e / d.max(1e-9));
    }
    metric_ratios.sort_unstable_by(f64::total_cmp);
    let metrics_overhead = MetricsOverhead {
        study_sec_disabled: disabled_sec,
        study_sec_enabled: enabled_sec,
        overhead_pct: (metric_ratios[metric_ratios.len() / 2] - 1.0) * 100.0,
    };

    // Supervisor overhead: the same fault-free study through the raw
    // scheduler and through the supervisor (per-prefix fragments,
    // catch_unwind, in-order merge, watchdog ticks; no faults, no
    // checkpoints). Both sides use the plain `Vec` sink so the comparison
    // isolates the supervision machinery. Interleaved best-of, as above.
    let raw_once = || {
        let mut records: Vec<SessionRecord> = Vec::new();
        let t = Instant::now();
        run_study_observed(&world, &study, &mut records, &Metrics::disabled());
        (t.elapsed().as_secs_f64(), records.len())
    };
    let sup_cfg = SupervisorConfig::default();
    let supervised_once = || {
        let mut records: Vec<SessionRecord> = Vec::new();
        let t = Instant::now();
        run_study_supervised(&world, &study, &sup_cfg, &mut records, &Metrics::disabled())
            .expect("fault-free supervised run");
        (t.elapsed().as_secs_f64(), records.len())
    };
    // Run-to-run noise on a loaded machine is larger than the effect
    // being measured, and best-of-N puts all the bad luck on whichever
    // side never catches a quiet window. Each iteration therefore times
    // the two drivers back to back and the overhead is the median of the
    // paired ratios; the reported seconds are still the best of each.
    let sup_iters = if opts.quick { 1 } else { 9 };
    let mut raw_sec = f64::INFINITY;
    let mut supervised_sec = f64::INFINITY;
    let mut ratios = Vec::with_capacity(sup_iters);
    for _ in 0..sup_iters {
        let (r, n_raw) = raw_once();
        let (s, n_sup) = supervised_once();
        assert_eq!(n_raw, n_sup, "supervised run emitted a different record count");
        raw_sec = raw_sec.min(r);
        supervised_sec = supervised_sec.min(s);
        ratios.push(s / r.max(1e-9));
    }
    ratios.sort_unstable_by(f64::total_cmp);
    let supervisor_overhead = SupervisorOverhead {
        study_sec_raw: raw_sec,
        study_sec_supervised: supervised_sec,
        overhead_pct: (ratios[ratios.len() / 2] - 1.0) * 100.0,
    };

    let headline = Headline {
        sessions_per_sec_before: ingest.baseline_records_per_sec,
        sessions_per_sec_after: ingest.columnar_records_per_sec,
        speedup: ingest.speedup_columnar,
    };

    PipelineBenchReport {
        config: BenchConfig {
            seed: opts.seed,
            days,
            sessions_per_group_window: sessions,
            country_fraction,
            parallelism: 1,
            quick: opts.quick,
            iters,
        },
        study: study_tp,
        ingest,
        streaming,
        metrics_overhead,
        supervisor_overhead,
        headline,
    }
}

/// Render the report for the CLI.
pub fn render(r: &PipelineBenchReport) -> String {
    let mut out = String::from("== Pipeline throughput (parallelism 1) ==\n");
    out.push_str(&format!(
        "study: {} sessions → {} records in {:.2}s  ({:.0} sessions/s, {} cells)\n",
        r.study.sessions_simulated,
        r.study.records_emitted,
        r.study.elapsed_sec,
        r.study.sessions_per_sec,
        r.study.peak_cells
    ));
    out.push_str(&format!("ingest ({} records, best of {}):\n", r.ingest.records, r.config.iters));
    out.push_str(&format!(
        "  baseline (seed-style std HashMap): {:>10.0} rec/s  ({:.3}s)\n",
        r.ingest.baseline_records_per_sec, r.ingest.baseline_sec
    ));
    out.push_str(&format!(
        "  from_records (Fx + memo):          {:>10.0} rec/s  ({:.3}s, {:.2}x)\n",
        r.ingest.from_records_records_per_sec,
        r.ingest.from_records_sec,
        r.ingest.speedup_from_records
    ));
    out.push_str(&format!(
        "  columnar shards (SoA):             {:>10.0} rec/s  ({:.3}s, {:.2}x)\n",
        r.ingest.columnar_records_per_sec, r.ingest.columnar_sec, r.ingest.speedup_columnar
    ));
    out.push_str(&format!(
        "streaming sink: {:>10.0} rec/s  ΔMinRTT p50 {:.3} ms  p80 {:.3} ms\n",
        r.streaming.records_per_sec, r.streaming.delta_p50, r.streaming.delta_p80
    ));
    out.push_str(&format!(
        "observability: study {:.2}s → {:.2}s with metrics recording  (median {:+.2}%, target |x| < 3%)\n",
        r.metrics_overhead.study_sec_disabled,
        r.metrics_overhead.study_sec_enabled,
        r.metrics_overhead.overhead_pct
    ));
    out.push_str(&format!(
        "supervisor:    study {:.2}s → {:.2}s under the fault-tolerant driver  ({:+.2}%, target < 3%)\n",
        r.supervisor_overhead.study_sec_raw,
        r.supervisor_overhead.study_sec_supervised,
        r.supervisor_overhead.overhead_pct
    ));
    out.push_str(&format!(
        "headline: {:.0} → {:.0} sessions/s  ({:.2}x, target ≥ 2.00x)\n",
        r.headline.sessions_per_sec_before, r.headline.sessions_per_sec_after, r.headline.speedup
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeperf_routing::{PopId, Prefix};

    fn synthetic(groups: usize, windows: u32, per_cell: usize) -> Vec<SessionRecord> {
        let mut out = Vec::new();
        for g in 0..groups {
            let key = GroupKey {
                pop: PopId((g % 4) as u16),
                prefix: Prefix::new((g as u32) << 16, 16),
                country: g as u16,
                continent: (g % 6) as u8,
            };
            for w in 0..windows {
                for rank in 0..2u8 {
                    for i in 0..per_cell {
                        out.push(SessionRecord {
                            group: key,
                            window: w,
                            route_rank: rank,
                            relationship: if rank == 0 {
                                Relationship::PrivatePeer
                            } else {
                                Relationship::Transit
                            },
                            longer_path: rank > 0,
                            more_prepended: false,
                            min_rtt_ms: 40.0 + rank as f64 * 3.0 + (i % 13) as f64 * 0.3,
                            hdratio: Some(((i % 11) as f64 / 10.0).min(1.0)),
                            bytes: 5_000,
                        });
                    }
                }
            }
        }
        out
    }

    #[test]
    fn all_ingest_paths_agree_on_shape() {
        let records = synthetic(6, 8, 10);
        let cells = seed_style_from_records(&records, 8);
        let ds = Dataset::from_records(&records, 8);
        let dc = columnar_ingest(&records, 8);
        assert_eq!(cells, ds.cell_count());
        assert_eq!(ds.cell_count(), dc.cell_count());
        assert_eq!(cells, 6 * 8 * 2);
    }

    #[test]
    fn quick_bench_produces_sane_report() {
        let r = run(&BenchOptions { seed: 7, quick: true });
        assert!(r.study.records_emitted > 0);
        assert_eq!(r.ingest.records as u64, r.study.records_emitted);
        assert!(r.study.peak_cells > 0);
        assert!(r.ingest.baseline_records_per_sec > 0.0);
        assert!(r.ingest.columnar_records_per_sec > 0.0);
        assert!(r.headline.speedup > 0.0);
        // Digest quantiles track the exact ones on real study data.
        assert!(r.streaming.delta_p50 <= 1.0, "p50 delta {}", r.streaming.delta_p50);
        assert!(r.metrics_overhead.study_sec_disabled > 0.0);
        assert!(r.metrics_overhead.study_sec_enabled > 0.0);
        assert!(r.supervisor_overhead.study_sec_raw > 0.0);
        assert!(r.supervisor_overhead.study_sec_supervised > 0.0);
        let js = serde_json::to_string(&r).expect("serializable");
        assert!(js.contains("sessions_per_sec_after"));
        assert!(js.contains("overhead_pct"));
        assert!(js.contains("study_sec_supervised"));
    }

    #[test]
    fn observed_bench_populates_every_metric_family() {
        let metrics = Metrics::enabled();
        let r = run_observed(&BenchOptions { seed: 7, quick: true }, &metrics);
        let snap = metrics.snapshot();
        // Runner counters from the recorded study run.
        assert_eq!(
            snap.counters.get("runner.records_emitted").copied(),
            Some(r.study.records_emitted)
        );
        // Scheduler gauges and sink gauges.
        assert!(snap.gauges.keys().any(|k| k.starts_with("scheduler.worker.")));
        assert!(snap.gauges.contains_key("sink.tee.records"));
        // Merge-latency histogram and phase spans, including figures.
        assert!(snap.histograms.contains_key("sink.merge_ns"));
        let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
        for expected in ["study", "study.run", "study.finalize", "figures.fig6_minrtt"] {
            assert!(names.contains(&expected), "missing span {expected}: {names:?}");
        }
    }
}
