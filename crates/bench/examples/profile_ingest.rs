//! Phase breakdown of the ingestion paths (dev profiling aid).

use edgeperf_analysis::sink::{RecordShard, RecordSink};
use edgeperf_analysis::{ColumnarShard, ColumnarSink, Dataset, SessionRecord};
use edgeperf_bench::pipeline_bench::seed_style_from_records;
use edgeperf_world::{run_study_into, StudyConfig, World, WorldConfig};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let world = World::generate(WorldConfig { country_fraction: 0.3, ..Default::default() });
    let study = StudyConfig {
        seed: 20190521 ^ 0xABCD,
        days: 1,
        sessions_per_group_window: 48,
        parallelism: 1,
        ..Default::default()
    };
    let n_windows = study.n_windows() as usize;
    let mut records: Vec<SessionRecord> = Vec::new();
    run_study_into(&world, &study, &mut records);
    eprintln!("{} records", records.len());

    for _ in 0..3 {
        let t = Instant::now();
        let c = seed_style_from_records(black_box(&records), n_windows);
        eprintln!("baseline: {:?} ({c} cells)", t.elapsed());

        let t = Instant::now();
        let ds = Dataset::from_records(black_box(&records), n_windows);
        eprintln!("from_records: {:?} ({} cells)", t.elapsed(), ds.cell_count());

        let t = Instant::now();
        let mut shard = ColumnarShard::default();
        for &r in &records {
            shard.push(r);
        }
        let push_t = t.elapsed();
        let t = Instant::now();
        let mut sink = ColumnarSink::new(n_windows);
        sink.merge_shard(shard);
        let ds2 = sink.into_dataset();
        eprintln!(
            "columnar: push {:?} + assemble {:?} ({} cells)",
            push_t,
            t.elapsed(),
            ds2.cell_count()
        );
    }
}
