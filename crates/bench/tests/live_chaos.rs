//! Chaos integration tests for the live tier: deterministic fault
//! plans (wire cuts, torn records, slow-loris stalls, worker panics,
//! injected ENOSPC) against the reconnect-and-resume client, asserting
//! the recovery is *exact* — every record applied exactly once and the
//! closed cells bit-identical to a fault-free control replay — at
//! several worker counts and on both wire formats.

use edgeperf_bench::loadgen::{run_chaos, ChaosReport, ChaosRunOpts, LoadgenConfig, WireMode};
use edgeperf_live::ChaosPlan;
use std::path::PathBuf;

fn cfg(wire: WireMode, sessions: usize, windows: u32, seed: u64) -> LoadgenConfig {
    LoadgenConfig { wire, sessions, windows, groups: 16, seed, ..LoadgenConfig::default() }
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("edgeperf-live-chaos-{tag}-{}", std::process::id()))
}

fn assert_exact(report: &ChaosReport, sessions: u64) {
    assert_eq!(report.acked, sessions, "every record acked exactly once: {report:?}");
    assert_eq!(report.accepted, sessions, "no losses, no double-counts: {report:?}");
    assert_eq!(report.rejected, 0, "{report:?}");
    assert_eq!(report.worker_lost_records, 0, "{report:?}");
    assert_eq!(report.windows_shed, 0, "{report:?}");
    assert!(report.bit_identical_to_clean, "chaos cells drifted from fault-free: {report:?}");
}

#[test]
fn kills_mid_replay_resume_bit_identical_at_1_4_16_workers_both_wires() {
    let plan = ChaosPlan::parse("disconnect:40;torn:90;disconnect:150;torn:230;seed:3")
        .expect("valid plan");
    for wire in [WireMode::Jsonl, WireMode::Binary] {
        for workers in [1usize, 4, 16] {
            let report = run_chaos(
                &cfg(wire, 1_200, 4, 3),
                &plan,
                &ChaosRunOpts { workers, ..ChaosRunOpts::default() },
            )
            .expect("chaos replay");
            assert_exact(&report, 1_200);
            assert_eq!(report.injected_disconnects, 2, "wire={wire:?} workers={workers}");
            assert_eq!(report.injected_torn, 2, "wire={wire:?} workers={workers}");
            assert!(report.reconnects >= 4, "four cuts force four reconnects: {report:?}");
            assert_eq!(
                report.truncated_tails, 2,
                "each torn record leaves one unconsumed tail: {report:?}"
            );
        }
    }
}

#[test]
fn worker_panics_recover_in_place_without_losing_records() {
    let plan = ChaosPlan::parse("panic:0@100;panic:0@250;panic:1@200;seed:9").expect("valid plan");
    let report = run_chaos(
        &cfg(WireMode::Jsonl, 1_500, 4, 9),
        &plan,
        &ChaosRunOpts { workers: 2, ..ChaosRunOpts::default() },
    )
    .expect("chaos replay");
    assert_exact(&report, 1_500);
    assert_eq!(report.worker_recovered, 3, "all three scripted panics recovered: {report:?}");
    assert_eq!(report.reconnects, 0, "worker panics are invisible to the client: {report:?}");
}

#[test]
fn injected_enospc_degrades_the_store_then_a_probe_recovers_it() {
    let dir = tmp_dir("enospc");
    let plan = ChaosPlan::parse("spillfail:0@3;seed:5").expect("valid plan");
    let report = run_chaos(
        &cfg(WireMode::Jsonl, 2_500, 12, 5),
        &plan,
        &ChaosRunOpts { workers: 2, spill: Some((dir.clone(), 2)), ..ChaosRunOpts::default() },
    )
    .expect("chaos replay");
    std::fs::remove_dir_all(&dir).expect("spill dir cleanup");
    assert_exact(&report, 2_500);
    assert!(report.spill_errors >= 3, "three injected ENOSPC failures counted: {report:?}");
    assert!(!report.degraded_at_end, "a later probe must clear degraded mode: {report:?}");
}

#[test]
fn slow_client_eviction_is_survived_by_resume() {
    let plan = ChaosPlan::parse("stall:60@800;seed:11").expect("valid plan");
    let report = run_chaos(
        &cfg(WireMode::Binary, 1_200, 4, 11),
        &plan,
        &ChaosRunOpts { workers: 2, idle_timeout_ms: 150, ..ChaosRunOpts::default() },
    )
    .expect("chaos replay");
    assert_exact(&report, 1_200);
    assert_eq!(report.injected_stalls, 1, "{report:?}");
    assert!(report.conns_evicted >= 1, "the stall must outlive the idle deadline: {report:?}");
    assert!(report.reconnects >= 1, "eviction forces a resume: {report:?}");
}
