//! The supervised study path through `StudyBuilder`: same analysis
//! outputs as the raw path, faults quarantined with the figures intact,
//! and crash → `resume_from` → completion bit-identical to an
//! uninterrupted run.

use edgeperf_analysis::SessionRecord;
use edgeperf_bench::study::StudyBuilder;
use edgeperf_world::FaultPlan;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn small() -> StudyBuilder {
    StudyBuilder::new()
        .seed(42)
        .days(1)
        .sessions_per_group_window(8)
        .country_fraction(0.15)
        .parallelism(2)
}

fn record_bits(r: &SessionRecord) -> (u32, u32, u8, u64, Option<u64>, u64) {
    (
        r.group.prefix.base,
        r.window,
        r.route_rank,
        r.min_rtt_ms.to_bits(),
        r.hdratio.map(f64::to_bits),
        r.bytes,
    )
}

fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "edgeperf-bench-supervised-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn supervised_run_matches_raw_run_as_a_multiset() {
    let raw = small().run();
    let sup = small().run_supervised().expect("fault-free supervised run");

    assert_eq!(sup.report.completed, sup.report.n_prefixes);
    assert!(sup.report.quarantined.is_empty());
    assert_eq!(sup.records.len(), raw.records.len());

    // The raw path merges per-worker shards; the supervisor merges per
    // prefix. Orders differ, multisets must not.
    let mut a: Vec<_> = raw.records.iter().map(record_bits).collect();
    let mut b: Vec<_> = sup.records.iter().map(record_bits).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);

    // And the aggregated dataset drives the same figures.
    assert_eq!(sup.dataset.groups.len(), raw.dataset.groups.len());
    assert_eq!(sup.dataset.total_bytes(), raw.dataset.total_bytes());
}

#[test]
fn injected_fault_quarantines_but_figures_still_compute() {
    let sup = small()
        .fault_plan(FaultPlan::parse("panic:0@99").unwrap())
        .run_supervised()
        .expect("faulty run still completes");
    assert_eq!(sup.report.quarantined.len(), 1);
    assert_eq!(sup.report.quarantined[0].prefix, 0);
    assert_eq!(sup.report.completed, sup.report.n_prefixes - 1);
    let text = sup.report.render();
    assert!(text.contains("quarantined prefix 0"));
    // The analysis layer never sees the quarantined prefix; everything
    // else flows through.
    let f6 = edgeperf_bench::study::fig6(&edgeperf_bench::study::StudyData {
        records: sup.records,
        dataset: sup.dataset,
        cfg: sup.cfg,
        stats: sup.stats,
    });
    assert!(f6.minrtt_p50 > 5.0 && f6.minrtt_p50 < 100.0);
}

#[test]
fn crash_resume_via_builder_is_bit_identical() {
    let uninterrupted = small().run_supervised().unwrap();
    let n = uninterrupted.report.n_prefixes;

    let dir = scratch_dir("resume");
    let first = small()
        .checkpoint_dir(&dir)
        .fault_plan(FaultPlan::parse(&format!("crash:{}", n / 2)).unwrap())
        .run_supervised();
    let err = first.err().expect("injected crash aborts the first run");
    assert!(err.to_string().contains("injected crash"), "got: {err}");

    // `resume_from` rebuilds the study shape from the checkpoint alone.
    let resumed = StudyBuilder::resume_from(&dir)
        .expect("checkpoint readable")
        .parallelism(4)
        .run_supervised()
        .expect("resume completes");
    assert_eq!(resumed.report.resumed_at, Some(n / 2 + 1));
    assert_eq!(resumed.records.len(), uninterrupted.records.len());
    for (a, b) in resumed.records.iter().zip(&uninterrupted.records) {
        assert_eq!(record_bits(a), record_bits(b));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_from_rejects_a_missing_checkpoint() {
    let dir = scratch_dir("missing");
    assert!(StudyBuilder::resume_from(&dir).is_err());
}
