//! Fleet agreement: the merged multi-PoP view is f64-bit-identical to a
//! single-node run over the same records — at any PoP count, any worker
//! count, and across a mid-run PoP failover.
//!
//! This is the DESIGN.md §11 worker-sharding invariant generalized
//! worker → node: the catchment homes each group's full insertion
//! sequence on exactly one PoP at a time, so the fleet merge is a
//! disjoint union and no t-digest approximation can creep in.
//!
//! Geometry note: `lateness_ms` is chosen so every window end stays
//! clear of the per-worker watermark sliver (the last `groups` records
//! span ~32 ms of event time), making the closed-window set identical
//! across all PoP/worker splits at query time.

use edgeperf_bench::fleet_run::{run_fleet, FleetRunOpts};
use edgeperf_bench::loadgen::LoadgenConfig;
use edgeperf_fleet::FleetChaosPlan;

fn agreement_cfg() -> LoadgenConfig {
    LoadgenConfig {
        sessions: 3_000,
        groups: 16,
        windows: 6,
        window_ms: 1_000.0,
        lateness_ms: 2_100.0,
        ..LoadgenConfig::default()
    }
}

#[test]
fn fleet_merge_is_bit_identical_across_pop_and_worker_counts() {
    let cfg = agreement_cfg();
    for pops in [2u16, 4] {
        for workers in [1usize, 4] {
            let opts = FleetRunOpts { pops, workers, plan: FleetChaosPlan::default() };
            let report = run_fleet(&cfg, &opts)
                .unwrap_or_else(|e| panic!("fleet run pops={pops} workers={workers}: {e}"));
            assert!(
                report.bit_identical_to_single_node,
                "fleet cells diverged from single-node at pops={pops} workers={workers}"
            );
            assert_eq!(report.acked, 3_000, "pops={pops} workers={workers}");
            assert_eq!(report.accepted, 3_000, "pops={pops} workers={workers}");
            assert_eq!(report.rejected, 0, "pops={pops} workers={workers}");
            assert_eq!(report.late, 0, "pops={pops} workers={workers}");
            assert!(report.drained, "pops={pops} workers={workers}");
            assert_eq!(report.kills, 0);
            assert!(report.fleet_cells > 0, "closed windows should have produced cells");
            // Fan-out reuse: a handful of query rounds over `pops`
            // nodes must not open more than one link per node per
            // round even without reuse — with reuse it is exactly one
            // connect per alive PoP.
            assert_eq!(report.fanout_connects, u64::from(pops), "pops={pops} workers={workers}");
            assert_eq!(report.fanout_reconnects, 0);
        }
    }
}

#[test]
fn failover_preserves_bit_identity_and_exactly_once_accounting() {
    let cfg = agreement_cfg();
    // Kill PoP 0 after 400 records (event time 800 ms <= lateness/2 =
    // 1050 ms, inside the failover budget).
    let opts = FleetRunOpts {
        pops: 3,
        workers: 2,
        plan: FleetChaosPlan::parse("kill:0@400;seed:7").expect("plan parses"),
    };
    let report = run_fleet(&cfg, &opts).expect("failover fleet run");
    assert_eq!(report.kills, 1, "the planned kill must fire");
    assert!(report.rehomed_groups > 0, "the dead PoP owned no groups — catchment degenerate");
    assert_eq!(report.alive_pops, 2);
    // Exactly-once fleet-wide: every record acked once on a live
    // session, every record folded into windows once, nothing late,
    // nothing lost — even though the dead PoP's partial state was
    // discarded and its groups replayed from record zero elsewhere.
    assert_eq!(report.acked, 3_000);
    assert_eq!(report.accepted, 3_000);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.late, 0);
    assert!(report.drained);
    // The failover opened at least one catch-up stream beyond the
    // initial per-PoP ones.
    assert!(report.streams > 3, "expected catch-up streams, got {}", report.streams);
    // And the merged view still matches a single node bit-for-bit.
    assert!(report.bit_identical_to_single_node, "failover broke fleet/single-node bit-identity");
}
