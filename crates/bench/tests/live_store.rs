//! Integration tests for the tiered window store through the live
//! server: windows evicted past the RAM retention horizon spill to
//! columnar segments, and a `cells` range query that spans disk and RAM
//! must return rows bit-identical to a server that kept the whole
//! horizon in memory — at any worker count, after a restart, and after
//! background compaction has rewritten the segments.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use edgeperf::core::HD_GOODPUT_BPS;
use edgeperf::live::{CellLine, CellQuery, GroupFilter, LiveClient, ServeBuilder, ServerHandle};
use edgeperf::obs::Metrics;
use edgeperf::serve::WireParser;
use edgeperf_bench::loadgen::{generate_lines, LoadgenConfig};

const WINDOW_MS: f64 = 1_000.0;
const LATENESS_MS: f64 = 250.0;
const WINDOWS: u32 = 24;

fn lines(sessions: usize) -> Vec<String> {
    generate_lines(&LoadgenConfig {
        sessions,
        groups: 16,
        windows: WINDOWS,
        window_ms: WINDOW_MS,
        max_txns: 2,
        lateness_ms: LATENESS_MS,
        ..LoadgenConfig::default()
    })
}

fn builder(workers: usize) -> ServeBuilder {
    ServeBuilder::new()
        .workers(workers)
        .window_ms(WINDOW_MS)
        .lateness_ms(LATENESS_MS)
        .metrics(&Metrics::enabled())
}

fn start(builder: ServeBuilder) -> ServerHandle {
    builder.start(Arc::new(WireParser::new(HD_GOODPUT_BPS))).expect("server starts")
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("edgeperf-live-store-{tag}-{}", std::process::id()))
}

/// Replay every line down the connection and block until the server has
/// folded them all in (single connection, so the replay is late-free).
fn replay(client: &mut LiveClient, lines: &[String]) {
    for line in lines {
        client.send_line(line).expect("send");
    }
    client.flush().expect("flush");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snap = client.snapshot().expect("snapshot");
        if snap.accepted + snap.rejected >= lines.len() as u64 {
            assert_eq!(snap.rejected, 0, "clean replay: {snap:?}");
            return;
        }
        assert!(Instant::now() < deadline, "server stuck mid-replay");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Serialize rows for comparison: equal JSON means equal `f64` bit
/// patterns (the wire format ships the exact bits; see
/// `edgeperf_live::store`) and equal order.
fn rows_json(rows: &[CellLine]) -> Vec<String> {
    rows.iter().map(|c| serde_json::to_string(c).expect("cell serializes")).collect()
}

/// The full horizon. `from=0` makes the query "filtered", which routes
/// both store-less and store-backed servers through the canonical sort.
fn full() -> CellQuery {
    CellQuery { from_window: Some(0), ..CellQuery::default() }
}

#[test]
fn spilled_query_is_bit_identical_to_all_ram_at_1_4_16_workers() {
    let lines = lines(4_000);
    for workers in [1usize, 4, 16] {
        let dir = tmp_dir(&format!("workers{workers}"));
        let spill = start(builder(workers).retention_windows(2).spill_dir(&dir));
        let mut client = LiveClient::connect(spill.addr()).expect("connect");
        replay(&mut client, &lines);
        let store = client.store_stats().expect("store stats");
        assert!(store.spilled_windows > 0, "retention 2 of {WINDOWS} must spill: {store:?}");
        assert!(store.segments > 0, "{store:?}");
        let spilled_rows = client.cells_query(&full()).expect("spilled cells");
        client.shutdown().expect("shutdown");
        let _ = spill.join();

        let ram = start(builder(workers).retention_windows(WINDOWS as usize + 4));
        let mut client = LiveClient::connect(ram.addr()).expect("connect");
        replay(&mut client, &lines);
        let ram_rows = client.cells_query(&full()).expect("ram cells");
        client.shutdown().expect("shutdown");
        let _ = ram.join();

        assert!(!spilled_rows.is_empty());
        assert_eq!(
            rows_json(&spilled_rows),
            rows_json(&ram_rows),
            "disk+RAM merge drifted from all-RAM at workers={workers}"
        );
        std::fs::remove_dir_all(&dir).expect("spill dir cleanup");
    }
}

#[test]
fn range_and_group_filters_match_a_manual_filter_of_the_full_result() {
    let lines = lines(3_000);
    let dir = tmp_dir("filters");
    let server = start(builder(4).retention_windows(2).spill_dir(&dir));
    let mut client = LiveClient::connect(server.addr()).expect("connect");
    replay(&mut client, &lines);

    let all = client.cells_query(&full()).expect("full cells");
    assert!(!all.is_empty());

    let sub = CellQuery { from_window: Some(3), until_window: Some(11), ..CellQuery::default() };
    let got = client.cells_query(&sub).expect("range cells");
    let want: Vec<&CellLine> = all.iter().filter(|c| (3..=11).contains(&c.window)).collect();
    assert!(!got.is_empty(), "historical range must hit spilled windows");
    assert_eq!(
        rows_json(&got),
        want.iter().map(|c| serde_json::to_string(c).expect("cell")).collect::<Vec<_>>(),
        "window-range query drifted from a manual filter"
    );

    let pop = all[0].pop;
    let grouped = CellQuery {
        from_window: Some(0),
        group: GroupFilter { pop: Some(pop), ..GroupFilter::default() },
        ..CellQuery::default()
    };
    let got = client.cells_query(&grouped).expect("group cells");
    let want: Vec<&CellLine> = all.iter().filter(|c| c.pop == pop).collect();
    assert!(!got.is_empty());
    assert_eq!(
        rows_json(&got),
        want.iter().map(|c| serde_json::to_string(c).expect("cell")).collect::<Vec<_>>(),
        "group-filtered query drifted from a manual filter"
    );

    client.shutdown().expect("shutdown");
    let _ = server.join();
    std::fs::remove_dir_all(&dir).expect("spill dir cleanup");
}

#[test]
fn restart_serves_spilled_history_from_the_manifest() {
    let lines = lines(3_000);
    let dir = tmp_dir("restart");
    // Every window at or below this index is past the retention horizon
    // on every worker, i.e. on disk only.
    let historical =
        CellQuery { from_window: Some(0), until_window: Some(12), ..CellQuery::default() };

    let first = start(builder(4).retention_windows(2).spill_dir(&dir));
    let mut client = LiveClient::connect(first.addr()).expect("connect");
    replay(&mut client, &lines);
    let before = client.cells_query(&historical).expect("historical cells");
    assert!(!before.is_empty(), "nothing spilled below window 12");
    client.shutdown().expect("shutdown");
    let _ = first.join();

    // A fresh server over the same directory, fed nothing: the manifest
    // replay alone must serve the same history.
    let second = start(builder(4).retention_windows(2).spill_dir(&dir));
    let mut client = LiveClient::connect(second.addr()).expect("connect");
    let after = client.cells_query(&historical).expect("recovered cells");
    assert_eq!(rows_json(&before), rows_json(&after), "manifest recovery lost or altered cells");
    client.shutdown().expect("shutdown");
    let _ = second.join();
    std::fs::remove_dir_all(&dir).expect("spill dir cleanup");
}

#[test]
fn compaction_rewrites_segments_without_changing_query_results() {
    let lines = lines(3_000);
    let dir = tmp_dir("compaction");
    let server = start(
        builder(4).retention_windows(2).spill_dir(&dir).compact_min_segments(2).compact_batch(2),
    );
    let mut client = LiveClient::connect(server.addr()).expect("connect");
    replay(&mut client, &lines);

    // The compactor runs on a 50ms tick; with thresholds this low it
    // must fire quickly once the replay has spilled.
    let deadline = Instant::now() + Duration::from_secs(10);
    let store = loop {
        let store = client.store_stats().expect("store stats");
        if store.compactions > 0 {
            break store;
        }
        assert!(Instant::now() < deadline, "compactor never ran: {store:?}");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(store.spilled_windows > 0, "{store:?}");
    let compacted_rows = client.cells_query(&full()).expect("compacted cells");
    client.shutdown().expect("shutdown");
    let _ = server.join();

    let ram = start(builder(4).retention_windows(WINDOWS as usize + 4));
    let mut client = LiveClient::connect(ram.addr()).expect("connect");
    replay(&mut client, &lines);
    let ram_rows = client.cells_query(&full()).expect("ram cells");
    client.shutdown().expect("shutdown");
    let _ = ram.join();

    assert!(!compacted_rows.is_empty());
    assert_eq!(
        rows_json(&compacted_rows),
        rows_json(&ram_rows),
        "compaction changed what a full-range query returns"
    );
    std::fs::remove_dir_all(&dir).expect("spill dir cleanup");
}
