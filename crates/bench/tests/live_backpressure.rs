//! Backpressure discipline of the live server's lock-free fan-out:
//! when a per-worker lane fills, the reader must *block* until the
//! worker catches up — never drop, never error — and the control
//! plane (ping) must stay responsive because it bypasses the record
//! lanes entirely.
//!
//! Every test here runs with `queue_capacity: 1`, which rounds up to a
//! single batch slot per (connection, worker) lane. Total in-flight
//! buffering is then a few hundred records at most, so replays of tens
//! of thousands of sessions are guaranteed to hit the full-ring path
//! thousands of times. If the server dropped on full instead of
//! blocking, `accepted` could not equal the number of lines sent.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use edgeperf::core::HD_GOODPUT_BPS;
use edgeperf::live::{LiveClient, ServeBuilder, ServerHandle};
use edgeperf::obs::Metrics;
use edgeperf::serve::WireParser;
use edgeperf_bench::loadgen::{generate_lines, LoadgenConfig};

fn start(workers: usize) -> ServerHandle {
    ServeBuilder::new()
        .workers(workers)
        .window_ms(1_000.0)
        .lateness_ms(250.0)
        .queue_capacity(1)
        .retention_windows(16)
        .metrics(&Metrics::enabled())
        .start(Arc::new(WireParser::new(HD_GOODPUT_BPS)))
        .expect("server starts")
}

fn lines(sessions: usize, seed: u64) -> Vec<String> {
    generate_lines(&LoadgenConfig {
        sessions,
        groups: 16,
        windows: 4,
        window_ms: 1_000.0,
        max_txns: 2,
        seed,
        ..LoadgenConfig::default()
    })
}

/// A replay far larger than the total lane capacity completes with
/// every record accepted: the reader blocked on full rings (thousands
/// of times, given one batch slot per lane) instead of shedding load,
/// and the drain protocol flushed every in-flight batch before the
/// final snapshot.
#[test]
fn full_lanes_block_the_reader_and_drop_nothing() {
    let sent = 8_000usize;
    let replay = lines(sent, 7);
    let server = start(2);
    let mut client = LiveClient::connect(server.addr()).expect("connect");
    for line in &replay {
        client.send_line(line).expect("send");
    }
    client.flush().expect("flush");
    let snap = client.shutdown().expect("shutdown");
    assert!(snap.drained, "{snap:?}");
    assert_eq!(snap.accepted, sent as u64, "blocked, not dropped: {snap:?}");
    assert_eq!(snap.rejected, 0, "{snap:?}");
    assert_eq!(snap.late, 0, "{snap:?}");
    let _ = server.join();
}

/// Ping rides each worker's control channel, not the record lanes, so
/// it answers even while another connection keeps every lane
/// saturated. The flood runs on its own thread; the main thread pings
/// throughout and every round-trip must succeed.
#[test]
fn ping_stays_responsive_while_lanes_are_full() {
    let sent = 20_000usize;
    let replay = lines(sent, 11);
    let server = start(2);
    let addr = server.addr();

    let done = Arc::new(AtomicBool::new(false));
    let flood = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut client = LiveClient::connect(addr).expect("flood connect");
            for line in &replay {
                client.send_line(line).expect("flood send");
            }
            client.flush().expect("flood flush");
            // Sync barrier: snapshot waits until this connection's
            // records are all applied, so the main thread sees exact
            // totals once `done` flips.
            let snap = client.snapshot().expect("flood snapshot");
            done.store(true, Ordering::Release);
            snap
        })
    };

    let mut control = LiveClient::connect(addr).expect("control connect");
    let mut pings = 0u32;
    while !done.load(Ordering::Acquire) {
        control.ping().expect("ping under load");
        pings += 1;
    }
    assert!(pings > 0, "at least one ping raced the flood");
    let flood_snap = flood.join().expect("flood thread");
    assert_eq!(flood_snap.accepted, sent as u64, "{flood_snap:?}");
    assert_eq!(flood_snap.rejected, 0, "{flood_snap:?}");

    let snap = control.shutdown().expect("shutdown");
    assert!(snap.drained, "{snap:?}");
    assert_eq!(snap.accepted, sent as u64, "{snap:?}");
    let _ = server.join();
}

/// The full multi-connection replay protocol (loadgen's striped
/// senders with chunk barriers) against a server whose lanes hold a
/// single batch each: every (connection, worker) lane saturates
/// constantly, yet the run ends with every session accepted, zero
/// rejects, and a clean drain.
#[test]
fn concurrent_connections_drain_clean_under_pressure() {
    let sessions = 12_000usize;
    let server = start(4);
    let cfg = LoadgenConfig {
        addr: server.addr().to_string(),
        sessions,
        connections: 3,
        groups: 16,
        windows: 4,
        window_ms: 1_000.0,
        // Must match the server's lateness bound: the sender chunking
        // keys off it to keep connection skew ahead of the watermark.
        lateness_ms: 250.0,
        max_txns: 2,
        rate: 0.0,
        shutdown: true,
        ..LoadgenConfig::default()
    };
    let report = edgeperf_bench::loadgen::run(&cfg).expect("replay");
    assert!(report.drained, "{report:?}");
    assert_eq!(report.accepted, sessions as u64, "blocked, not dropped: {report:?}");
    assert_eq!(report.rejected, 0, "{report:?}");
    assert_eq!(report.late, 0, "{report:?}");
    let _ = server.join();
}
