//! Live/offline agreement: a finite replay through `edgeperf serve`
//! yields window medians and Price–Bonett variances **bit-identical** to
//! the offline streaming pipeline, at parallelism 1, 4, and 16 — over the
//! JSONL wire *and* over the binary frame wire.
//!
//! Why this holds: records are sharded to workers by group hash, so every
//! record of a group flows through one worker in connection order, and
//! each worker's per-cell t-digest therefore sees the exact insertion
//! sequence a serial offline [`WindowRing`] sees. A single client
//! connection preserves the global order. The `cells` wire format prints
//! floats with shortest-round-trip precision, so the assertion survives
//! the JSON hop. On the binary path, the client runs the same estimator
//! locally and frames carry raw little-endian f64 bits, so the identity
//! extends across the frame codec too.
//!
//! Also covers the late-record path end to end: a record behind the
//! watermark must surface as a typed `late` reject in the snapshot, the
//! reason table, and the `ingest.reject.late` metric — never a silent
//! drop.

use std::sync::Arc;

use edgeperf::core::HD_GOODPUT_BPS;
use edgeperf::ingest::{ResponseIn, SessionIn};
use edgeperf::live::{BinarySender, CellLine, LiveClient, ServeBuilder, WindowRing};
use edgeperf::obs::Metrics;
use edgeperf::serve::{WireParser, WireSession};
use edgeperf_bench::loadgen::{generate_lines, LoadgenConfig};

const WINDOW_MS: f64 = 1_000.0;
const LATENESS_MS: f64 = 250.0;

fn builder(workers: usize) -> ServeBuilder {
    ServeBuilder::new()
        .workers(workers)
        .window_ms(WINDOW_MS)
        .lateness_ms(LATENESS_MS)
        .retention_windows(16)
        .metrics(&Metrics::enabled())
}

/// The offline reference: the same lines through a serial [`WindowRing`]
/// (the exact per-cell aggregation `StreamingDataset` uses), collecting
/// the cells of every window the watermark closes.
fn offline_cells(lines: &[String], parser: &WireParser) -> Vec<CellLine> {
    let mut ring = WindowRing::new(WINDOW_MS, LATENESS_MS);
    let mut out = Vec::new();
    for line in lines {
        let rec = parser.parse_line(line).expect("offline parse");
        for cw in ring.push(&rec).expect("offline push") {
            for (key, summary) in &cw.cells {
                out.push(CellLine::new(cw.index, key, summary));
            }
        }
    }
    out
}

/// Replay the lines over one connection and fetch the closed cells.
fn live_cells(lines: &[String], workers: usize) -> Vec<CellLine> {
    let server =
        builder(workers).start(Arc::new(WireParser::new(HD_GOODPUT_BPS))).expect("server starts");
    let mut client = LiveClient::connect(server.addr()).expect("connect");
    for line in lines {
        client.send_line(line).expect("send");
    }
    client.flush().expect("flush");
    let cells = client.cells().expect("cells");
    let snap = client.shutdown().expect("shutdown");
    assert_eq!(snap.accepted, lines.len() as u64, "every line ingested: {snap:?}");
    assert_eq!(snap.rejected, 0, "{snap:?}");
    assert_eq!(snap.late, 0, "{snap:?}");
    let _ = server.join();
    cells
}

/// Replay the same lines over one *binary* connection: run the estimator
/// locally (the same `record_from_wire` the server's JSONL path uses),
/// encode each record as a frame, and fetch the closed cells over a
/// separate JSONL control connection.
fn live_cells_binary(lines: &[String], parser: &WireParser, workers: usize) -> Vec<CellLine> {
    let server =
        builder(workers).start(Arc::new(WireParser::new(HD_GOODPUT_BPS))).expect("server starts");
    let mut sender = BinarySender::connect(server.addr()).expect("binary connect");
    for line in lines {
        let rec = parser.parse_line(line).expect("local parse");
        sender.send(&rec).expect("send frame");
    }
    sender.finish().expect("finish");
    // Binary connections carry no commands; poll a control connection
    // until the server has folded in every frame.
    let mut control = LiveClient::connect(server.addr()).expect("control connect");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let snap = control.snapshot().expect("snapshot");
        if snap.accepted + snap.rejected >= lines.len() as u64 {
            assert_eq!(snap.accepted, lines.len() as u64, "every frame ingested: {snap:?}");
            assert_eq!(snap.rejected, 0, "{snap:?}");
            assert_eq!(snap.late, 0, "{snap:?}");
            break;
        }
        assert!(std::time::Instant::now() < deadline, "server stuck: {snap:?}");
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    let cells = control.cells().expect("cells");
    let snap = control.shutdown().expect("shutdown");
    assert!(snap.drained);
    let _ = server.join();
    cells
}

type SortKey = (u32, u16, u32, u8, u16, u8, u8);

fn sort_key(c: &CellLine) -> SortKey {
    (c.window, c.pop, c.prefix_base, c.prefix_len, c.country, c.continent, c.rank)
}

fn assert_bit_identical(live: &[CellLine], offline: &[CellLine]) {
    assert_eq!(live.len(), offline.len(), "cell count");
    for (x, y) in live.iter().zip(offline) {
        assert_eq!(sort_key(x), sort_key(y), "cell identity");
        assert_eq!(x.n, y.n);
        assert_eq!(x.n_tested, y.n_tested);
        assert_eq!(x.bytes, y.bytes);
        assert_eq!(x.relationship, y.relationship);
        assert_eq!(x.longer_path, y.longer_path);
        assert_eq!(x.more_prepended, y.more_prepended);
        assert_eq!(x.min_rtt_p50.to_bits(), y.min_rtt_p50.to_bits(), "{x:?} vs {y:?}");
        assert_eq!(x.min_rtt_var.map(f64::to_bits), y.min_rtt_var.map(f64::to_bits), "{x:?}");
        assert_eq!(x.hdratio_p50.map(f64::to_bits), y.hdratio_p50.map(f64::to_bits), "{x:?}");
        assert_eq!(x.hdratio_var.map(f64::to_bits), y.hdratio_var.map(f64::to_bits), "{x:?}");
    }
}

#[test]
fn live_replay_matches_offline_windows_bit_for_bit() {
    let gen = LoadgenConfig {
        sessions: 4_000,
        groups: 16,
        windows: 6,
        window_ms: WINDOW_MS,
        max_txns: 3,
        ..LoadgenConfig::default()
    };
    let lines = generate_lines(&gen);
    let parser = WireParser::new(HD_GOODPUT_BPS);

    let mut offline = offline_cells(&lines, &parser);
    offline.sort_by_key(sort_key);
    // 6 windows of data; the watermark closes all but the last, with at
    // least one rank-0 cell per group in each.
    assert!(offline.len() >= 5 * 16, "only {} offline cells closed", offline.len());

    for workers in [1usize, 4, 16] {
        let mut live = live_cells(&lines, workers);
        live.sort_by_key(sort_key);
        assert_bit_identical(&live, &offline);
    }
}

#[test]
fn binary_replay_matches_jsonl_and_offline_bit_for_bit() {
    let gen = LoadgenConfig {
        sessions: 4_000,
        groups: 16,
        windows: 6,
        window_ms: WINDOW_MS,
        max_txns: 3,
        ..LoadgenConfig::default()
    };
    let lines = generate_lines(&gen);
    let parser = WireParser::new(HD_GOODPUT_BPS);

    let mut offline = offline_cells(&lines, &parser);
    offline.sort_by_key(sort_key);
    assert!(offline.len() >= 5 * 16, "only {} offline cells closed", offline.len());

    for workers in [1usize, 4, 16] {
        let mut jsonl = live_cells(&lines, workers);
        jsonl.sort_by_key(sort_key);
        let mut binary = live_cells_binary(&lines, &parser, workers);
        binary.sort_by_key(sort_key);
        // Binary-ingested cells equal JSONL-ingested cells equal the
        // offline reference, to the bit, at this worker count.
        assert_bit_identical(&binary, &jsonl);
        assert_bit_identical(&binary, &offline);
    }
}

fn wire_line(ts_ms: f64) -> String {
    let session = SessionIn {
        min_rtt_ms: 40.0,
        responses: vec![ResponseIn {
            bytes: 50_000,
            issued_at_ms: 0.0,
            first_tx_ms: Some(0.1),
            wnic: Some(14_600),
            second_last_ack_ms: Some(60.0),
            full_ack_ms: Some(61.0),
            last_packet_bytes: Some(1_240),
            bytes_in_flight_at_write: 0,
            prev_unsent_at_write: false,
        }],
        http: None,
        duration_ms: Some(100.0),
    };
    WireSession {
        ts_ms,
        pop: 1,
        prefix_base: 0x0A00_0100,
        prefix_len: 24,
        country: 1,
        continent: 0,
        route_rank: 0,
        relationship: "private".to_string(),
        longer_path: false,
        more_prepended: false,
        session,
    }
    .to_line()
}

#[test]
fn late_records_are_counted_and_typed_end_to_end() {
    let server = ServeBuilder::new()
        .workers(1)
        .window_ms(1_000.0)
        .lateness_ms(100.0)
        .metrics(&Metrics::enabled())
        .start(Arc::new(WireParser::new(HD_GOODPUT_BPS)))
        .expect("server starts");
    let mut client = LiveClient::connect(server.addr()).expect("connect");
    // ts 5000 drives the watermark to 4900; ts 100 is then behind it.
    client.send_line(&wire_line(5_000.0)).expect("send");
    client.send_line(&wire_line(100.0)).expect("send");
    client.flush().expect("flush");

    let snap = client.snapshot().expect("snapshot");
    assert_eq!(snap.accepted, 1, "{snap:?}");
    assert_eq!(snap.rejected, 1, "{snap:?}");
    assert_eq!(snap.late, 1, "{snap:?}");
    let reasons: Vec<(&str, u64)> =
        snap.reject_reasons.iter().map(|r| (r.reason.as_str(), r.count)).collect();
    assert_eq!(reasons, vec![("late", 1)], "typed reject reason");

    let metrics = client.metrics_json().expect("metrics");
    assert!(metrics.contains("ingest.reject.late"), "late counter exported: {metrics}");

    let fin = client.shutdown().expect("shutdown");
    assert!(fin.drained);
    assert_eq!(fin.late, 1);
    let _ = server.join();
}
