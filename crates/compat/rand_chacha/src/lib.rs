//! Hermetic stand-in for `rand_chacha`: a genuine ChaCha keystream RNG
//! (12 rounds, 64-bit block counter), deterministic and `Clone`-able.
//! The keystream follows the ChaCha specification but the word-to-output
//! mapping is not guaranteed to match upstream `rand_chacha` bit-for-bit.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 12;

/// ChaCha with 12 rounds, seeded with a 256-bit key.
#[derive(Clone)]
pub struct ChaCha12Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14); words 14..15 are zero.
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next word index in `block`; 16 means exhausted.
    idx: usize,
}

impl std::fmt::Debug for ChaCha12Rng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaCha12Rng").field("counter", &self.counter).finish_non_exhaustive()
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] stay zero (stream id).
        let mut working = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = working[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.block[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha12Rng { key, counter: 0, block: [0; 16], idx: 16 }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha12Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha12Rng::seed_from_u64(3);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniformity_sanity() {
        let mut rng = ChaCha12Rng::seed_from_u64(42);
        let n = 200_000;
        let mut buckets = [0usize; 10];
        for _ in 0..n {
            let v: f64 = rng.gen();
            buckets[(v * 10.0) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            let frac = b as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket {i}: {frac}");
        }
    }

    #[test]
    fn chacha_quarter_round_test_vector() {
        // RFC 7539 §2.1.1 test vector.
        let mut state = [0u32; 16];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9b8d6f43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a92f4);
        assert_eq!(state[1], 0xcb1cf8ce);
        assert_eq!(state[2], 0x4581472e);
        assert_eq!(state[3], 0x5881c4bb);
    }
}
