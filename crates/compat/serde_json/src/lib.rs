//! Hermetic stand-in for `serde_json`: a recursive-descent JSON parser
//! and compact/pretty printers over the `serde::Value` tree defined by
//! the sibling `serde` stand-in.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Parse or conversion error with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize a value into its JSON `Value` tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserialize from a JSON `Value` tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize to an indented (2-space) JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Parse a JSON document and deserialize it.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no representation for NaN or ±∞. Upstream serde_json
        // makes serializing them a hard error; this stand-in writes
        // `null` instead — the only representable fallback — so snapshot
        // writers never abort mid-document. Readers must treat a `null`
        // where a number was expected as "value was not finite".
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 && !(n == 0.0 && n.is_sign_negative()) {
        // Integral fast path. -0.0 compares equal to 0.0 and would print
        // as `0`, destroying the sign bit that `f64::to_bits` snapshot
        // round-trips depend on; route it through float formatting
        // (which prints `-0`) instead.
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document into a `Value`.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => {
                Err(Error(format!("unexpected character `{}` at byte {}", b as char, self.pos)))
            }
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf8 in number".to_string()))?;
        // Integers dominate real documents and parse several times
        // faster than the general float path; i64 → f64 is exact for
        // anything under 2^53, and longer digit strings fall through.
        // `-0` must not take it: 0i64 as f64 is +0.0, which would strip
        // the sign bit the writer just preserved.
        if integral && text.len() < 16 {
            if let Ok(i) = text.parse::<i64>() {
                if i != 0 || !text.starts_with('-') {
                    return Ok(Value::Num(i as f64));
                }
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        // Fast path: scan straight to the closing quote. Escape-free
        // strings (the overwhelming majority of keys and labels) are
        // validated and copied once, instead of per character — UTF-8
        // continuation bytes can never equal `"` or `\`, so a byte scan
        // is safe.
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid utf8 in string".to_string()))?;
                    self.pos += 1;
                    return Ok(s.to_string());
                }
                b'\\' => break,
                _ => self.pos += 1,
            }
        }
        // Slow path: an escape (or unterminated string). Keep what the
        // fast path already scanned and decode escapes from here.
        let mut out = String::new();
        out.push_str(
            std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error("invalid utf8 in string".to_string()))?,
        );
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(Error(format!(
                                        "invalid \\u escape at byte {}",
                                        self.pos
                                    )))
                                }
                            }
                            continue;
                        }
                        other => {
                            return Err(Error(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (validate at most the
                    // next 4 bytes, not the whole remaining buffer).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let c = std::str::from_utf8(&self.bytes[self.pos..end])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .or_else(|| {
                            // A valid scalar can sit at a slice boundary
                            // that cuts a following char; retry shorter.
                            (self.pos + 1..end).rev().find_map(|e| {
                                std::str::from_utf8(&self.bytes[self.pos..e])
                                    .ok()
                                    .and_then(|s| s.chars().next())
                            })
                        })
                        .ok_or_else(|| Error("invalid utf8 in string".to_string()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".to_string()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".to_string()))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| Error(format!("invalid \\u escape `{hex}`")))?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::with_capacity(4);
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::with_capacity(8);
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".to_string()));
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Value::Str("é".to_string()));
    }

    #[test]
    fn parse_nested() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        match v.get("a") {
            Some(Value::Array(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("b"), Some(&Value::Null));
            }
            other => panic!("bad parse: {other:?}"),
        }
        assert_eq!(v.get("c"), Some(&Value::Str("x".to_string())));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn print_round_trip() {
        let src = r#"{"name":"edge","vals":[1,2.5,null,true],"nested":{"k":"v"}}"#;
        let v = parse(src).unwrap();
        let printed = to_string(&v).unwrap();
        assert_eq!(parse(&printed).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn integers_print_without_decimal() {
        assert_eq!(to_string(&Value::Num(42.0)).unwrap(), "42");
        assert_eq!(to_string(&Value::Num(1.5)).unwrap(), "1.5");
    }

    /// -0.0 used to hit the integral fast path and print as `0`, and
    /// `-0` used to parse through the i64 fast path as +0.0 — either
    /// direction destroyed the sign bit that `f64::to_bits` snapshot
    /// round-trips are gated on.
    #[test]
    fn negative_zero_round_trips_bit_exactly() {
        let neg = -0.0f64;
        assert_eq!(to_string(&Value::Num(neg)).unwrap(), "-0");
        let back: f64 = from_str("-0").unwrap();
        assert_eq!(back.to_bits(), neg.to_bits());
        let back: f64 = from_str(&to_string(&neg).unwrap()).unwrap();
        assert_eq!(back.to_bits(), neg.to_bits());
        // Positive zero is unaffected by the carve-out.
        assert_eq!(to_string(&Value::Num(0.0)).unwrap(), "0");
        let back: f64 = from_str("0").unwrap();
        assert_eq!(back.to_bits(), 0.0f64.to_bits());
        // Non-integral spellings of -0 keep the sign through the float path.
        let back: f64 = from_str("-0.0").unwrap();
        assert_eq!(back.to_bits(), neg.to_bits());
        let back: f64 = from_str("-0e3").unwrap();
        assert_eq!(back.to_bits(), neg.to_bits());
    }

    /// JSON cannot carry NaN/±∞; the writer falls back to `null` (see
    /// `write_number`) rather than erroring like upstream serde_json.
    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(to_string(&Value::Num(f64::NAN)).unwrap(), "null");
        assert_eq!(to_string(&Value::Num(f64::INFINITY)).unwrap(), "null");
        assert_eq!(to_string(&Value::Num(f64::NEG_INFINITY)).unwrap(), "null");
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote\" slash\\ newline\n tab\t ctrl\u{1}".to_string();
        let printed = to_string(&s).unwrap();
        let back: String = from_str(&printed).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pair() {
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Value::Str("😀".to_string()));
    }
}
