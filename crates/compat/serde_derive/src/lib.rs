//! Hermetic stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for **named-field structs**, implemented with
//! raw `proc_macro` token walking (no syn/quote available offline).
//!
//! Supported shape: optional attributes/doc comments, optional `pub`,
//! `struct Name { fields... }` without generics. The only honoured field
//! attribute is `#[serde(default)]`; unknown object keys are ignored on
//! deserialization, mirroring serde's default behaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Parse `struct Name { ... }`, returning the name and fields.
fn parse_struct(input: TokenStream, derive: &str) -> (String, Vec<Field>) {
    let mut iter = input.into_iter().peekable();
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute body (and the `!` of inner attributes).
                if matches!(iter.peek(), Some(t) if is_punct(t, '!')) {
                    iter.next();
                }
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("derive({derive}): expected struct name, got {other:?}"),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                panic!("derive({derive}) supports only structs");
            }
            _ => {}
        }
    }
    let name = name.unwrap_or_else(|| panic!("derive({derive}): no struct found"));
    for tt in iter {
        if let TokenTree::Group(g) = tt {
            match g.delimiter() {
                Delimiter::Brace => return (name, parse_fields(g.stream(), derive)),
                Delimiter::Parenthesis => {
                    panic!("derive({derive}): tuple structs are not supported")
                }
                _ => {}
            }
        } else if is_punct(&tt, '<') {
            panic!("derive({derive}): generic structs are not supported");
        }
    }
    panic!("derive({derive}): struct {name} has no field block");
}

fn parse_fields(ts: TokenStream, derive: &str) -> Vec<Field> {
    let mut out = Vec::new();
    let mut iter = ts.into_iter().peekable();
    loop {
        // Field attributes; detect #[serde(default)].
        let mut default = false;
        while matches!(iter.peek(), Some(t) if is_punct(t, '#')) {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.next() {
                let mut inner = g.stream().into_iter();
                if let Some(TokenTree::Ident(id)) = inner.next() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.next() {
                            for t in args.stream() {
                                match t {
                                    TokenTree::Ident(w) if w.to_string() == "default" => {
                                        default = true
                                    }
                                    TokenTree::Punct(p) if p.as_char() == ',' => {}
                                    other => panic!(
                                        "derive({derive}): unsupported serde attribute {other}"
                                    ),
                                }
                            }
                        }
                    }
                }
            }
        }
        // Visibility.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                iter.next();
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("derive({derive}): expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(t) if is_punct(&t, ':') => {}
            other => panic!("derive({derive}): expected `:` after {name}, got {other:?}"),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tt) = iter.peek() {
            match tt {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    } else if c == ',' && depth == 0 {
                        iter.next();
                        break;
                    }
                    iter.next();
                }
                _ => {
                    iter.next();
                }
            }
        }
        out.push(Field { name, default });
        if iter.peek().is_none() {
            break;
        }
    }
    out
}

/// Derive `serde::Serialize` (object with fields in declaration order).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_struct(input, "Serialize");
    let mut members = String::new();
    for f in &fields {
        members.push_str(&format!(
            "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})),",
            f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{members}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`. Missing fields: `#[serde(default)]`
/// fields take `Default::default()`; other fields deserialize from
/// `Null` (so `Option` becomes `None`) or report a missing-field error.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_struct(input, "Deserialize");
    let mut members = String::new();
    for f in &fields {
        let on_missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "::serde::Deserialize::from_value(&::serde::Value::Null)\
                     .map_err(|_| ::serde::DeError::missing(\"{}\"))?",
                f.name
            )
        };
        members.push_str(&format!(
            "{0}: match v.get(\"{0}\") {{\n\
                 ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)\
                     .map_err(|e| ::serde::DeError(::std::format!(\"field `{0}`: {{e}}\")))?,\n\
                 ::std::option::Option::None => {1},\n\
             }},",
            f.name, on_missing
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if !::std::matches!(v, ::serde::Value::Object(_)) {{\n\
                     return ::std::result::Result::Err(::serde::DeError::expected(\"object\", v));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {members} }})\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
