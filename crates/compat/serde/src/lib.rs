//! Hermetic stand-in for `serde`: `Serialize`/`Deserialize` defined over
//! an owned JSON-like [`Value`] tree instead of serde's visitor
//! machinery. `serde_json` (the sibling stand-in) supplies parsing and
//! printing; `serde_derive` supplies `#[derive(Serialize, Deserialize)]`
//! for named-field structs, honouring `#[serde(default)]`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// An owned JSON value: the interchange tree both traits target.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (stored as `f64`, which covers every value this
    /// workspace serializes).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, preserving insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// True only for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Error for a missing required field.
    pub fn missing(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }

    /// Error for a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError(format!("expected {what}, found {kind}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Convert to the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the interchange tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("boolean", other)),
        }
    }
}

macro_rules! num_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => {
                        let cast = *n as $t;
                        if cast as f64 == *n {
                            Ok(cast)
                        } else {
                            Err(DeError(format!(
                                concat!("number {} out of range for ", stringify!($t)),
                                n
                            )))
                        }
                    }
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
num_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
float_impls!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut members: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        members.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_string()));
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<f64>::from_value(&Value::Num(2.0)), Ok(Some(2.0)));
    }

    #[test]
    fn numeric_range_checks() {
        assert!(u8::from_value(&Value::Num(300.0)).is_err());
        assert!(u64::from_value(&Value::Num(-1.0)).is_err());
        assert!(u64::from_value(&Value::Num(1.5)).is_err());
    }

    #[test]
    fn collections_and_tuples() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        match v.to_value() {
            Value::Array(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0], Value::Array(vec![Value::Num(1.0), Value::Num(2.0)]));
            }
            other => panic!("expected array, got {other:?}"),
        }
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.0f64);
        assert_eq!(m.to_value().get("a"), Some(&Value::Num(1.0)));
    }

    #[test]
    fn object_get() {
        let obj = Value::Object(vec![("k".into(), Value::Bool(true))]);
        assert_eq!(obj.get("k"), Some(&Value::Bool(true)));
        assert_eq!(obj.get("missing"), None);
        assert_eq!(Value::Null.get("k"), None);
    }
}
