//! Hermetic stand-in for the `rand` crate: the trait surface this
//! workspace uses (`Rng`, `RngCore`, `SeedableRng`), implemented without
//! any external dependency. Deterministic given a seed; streams do not
//! match upstream `rand` bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be drawn from the "standard" distribution:
/// uniform over the full domain for integers and `bool`, uniform over
/// `[0, 1)` for floats.
pub trait StandardSample {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Element types `Rng::gen_range` can draw uniformly.
///
/// A single generic `SampleRange` impl over this trait (rather than one
/// impl per concrete range type) is what lets type inference flow from
/// the expression context into integer literals, as with upstream rand:
/// `rng.gen_range(10..200) * 1_000_000_000u64` infers `u64` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "gen_range: empty range");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range: empty range");
                let u = f64::sample_standard(rng) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range types `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing random-value API, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw from the standard distribution (see [`StandardSample`]).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded through splitmix64 (the same
    /// construction upstream `rand` documents).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SplitMix(u64);
    impl RngCore for SplitMix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_standard_is_unit_interval_and_roughly_uniform() {
        let mut rng = SplitMix(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = SplitMix(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
            let v = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = SplitMix(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-4.0..4.0);
            assert!((-4.0..4.0).contains(&v));
            let w = rng.gen_range(0.5..=1.5);
            assert!((0.5..=1.5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SplitMix(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = SplitMix(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
