//! Hermetic stand-in for `proptest`: the `proptest!` macro, `prop_assert*`,
//! and the strategy combinators this workspace uses (ranges, tuples,
//! `prop::collection::vec`, `prop::option::of`, `prop::sample::select`,
//! `any`, `prop_map`).
//!
//! Differences from upstream: cases are generated from a fixed seed (fully
//! deterministic), there is **no shrinking** of failures, and `prop_assert*`
//! panics (upstream returns an error that drives shrinking). Case count
//! defaults to 64 and can be overridden with `ProptestConfig::with_cases`
//! or the `PROPTEST_CASES` environment variable.

use std::ops::{Range, RangeInclusive};

pub use rand_chacha::ChaCha12Rng;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut rand_chacha::ChaCha12Rng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut rand_chacha::ChaCha12Rng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut rand_chacha::ChaCha12Rng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut rand_chacha::ChaCha12Rng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut rand_chacha::ChaCha12Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Types with a canonical full-range strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives (backs [`any`]).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! any_impls {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut rand_chacha::ChaCha12Rng) -> $t {
                rand::Rng::gen(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }
    )*};
}
any_impls!(bool, u8, u16, u32, u64, i8, i16, i32, i64, f64);

/// The canonical strategy for `T` (whole domain for primitives).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Seed the case RNG; called from `proptest!` expansions, which cannot
/// name `rand` because call sites need not depend on it.
#[doc(hidden)]
pub fn __seed_rng(seed: u64) -> ChaCha12Rng {
    <ChaCha12Rng as rand::SeedableRng>::seed_from_u64(seed)
}

/// Combinator namespace mirroring upstream's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use std::ops::Range;

        /// Bounds on a generated collection's length.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            /// Exclusive upper bound.
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange { lo: r.start, hi: r.end }
            }
        }

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        /// `Vec` strategy: each element from `elem`, length from `size`
        /// (a `usize` for an exact length, or a `Range<usize>`).
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { elem, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut rand_chacha::ChaCha12Rng) -> Self::Value {
                let len = if self.size.lo + 1 == self.size.hi {
                    self.size.lo
                } else {
                    rand::Rng::gen_range(rng, self.size.lo..self.size.hi)
                };
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::Strategy;

        /// Strategy for `Option<S::Value>`.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `Some(inner)` three times out of four, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut rand_chacha::ChaCha12Rng) -> Self::Value {
                if rand::Rng::gen_bool(rng, 0.75) {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::Strategy;

        /// Strategy choosing uniformly from a fixed set.
        pub struct SelectStrategy<T> {
            options: Vec<T>,
        }

        /// Choose uniformly from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> SelectStrategy<T> {
            assert!(!options.is_empty(), "select from empty set");
            SelectStrategy { options }
        }

        impl<T: Clone> Strategy for SelectStrategy<T> {
            type Value = T;

            fn generate(&self, rng: &mut rand_chacha::ChaCha12Rng) -> T {
                let i = rand::Rng::gen_range(rng, 0..self.options.len());
                self.options[i].clone()
            }
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Assert within a property (panics; no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests. Each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            // Fixed seed: deterministic suite, varied per call site.
            let mut __rng = $crate::__seed_rng(0x70726f70u64 ^ ((line!() as u64) << 16));
            for __case in 0..__cfg.cases {
                $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in -2.0f64..=2.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-2.0..=2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(
            v in prop::collection::vec(0u32..100, 3..7),
            exact in prop::collection::vec(any::<bool>(), 4),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(exact.len(), 4);
        }

        #[test]
        fn map_and_select_compose(
            s in prop::sample::select(vec![1u32, 2, 3]).prop_map(|v| v * 10),
            o in prop::option::of(0u8..5),
        ) {
            prop_assert!(s == 10 || s == 20 || s == 30);
            if let Some(x) = o {
                prop_assert!(x < 5);
            }
        }
    }

    #[test]
    fn determinism() {
        use crate::Strategy;
        let s = crate::prop::collection::vec(0u64..1000, 1..50);
        let mut r1 = <crate::ChaCha12Rng as rand::SeedableRng>::seed_from_u64(9);
        let mut r2 = <crate::ChaCha12Rng as rand::SeedableRng>::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
