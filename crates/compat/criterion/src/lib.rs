//! Hermetic stand-in for `criterion`: `bench_function`/`iter`,
//! `criterion_group!`/`criterion_main!`, and `black_box`.
//!
//! Timing model: one calibration run picks an iteration batch aiming at
//! ~10 ms per sample, then `sample_size` samples are timed and the median
//! ns/iter is reported on stdout. When invoked by `cargo test` (cargo
//! passes `--test` to `harness = false` bench binaries) each benchmark
//! body runs exactly once as a smoke test, with no timing loop.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    /// `--test` smoke mode: run each body once, skip timing.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 100, test_mode }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Time `f` (which receives a [`Bencher`]) under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b =
            Bencher { sample_size: self.sample_size, test_mode: self.test_mode, median_ns: None };
        f(&mut b);
        match b.median_ns {
            Some(ns) => println!("{name:<50} time: [{}]", format_ns(ns)),
            None if self.test_mode => println!("{name:<50} ok (test mode)"),
            None => println!("{name:<50} (no measurement: Bencher::iter not called)"),
        }
        self
    }
}

/// Per-benchmark measurement handle passed to the closure.
pub struct Bencher {
    sample_size: usize,
    test_mode: bool,
    median_ns: Option<f64>,
}

impl Bencher {
    /// Run `f` repeatedly and record its median time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Calibrate: aim for ~10ms per sample so short bodies still get
        // a usable clock resolution.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(10);
        let iters: u64 = if once >= target {
            1
        } else {
            ((target.as_nanos() / once.as_nanos()) as u64).clamp(1, 1_000_000)
        };
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_unstable_by(f64::total_cmp);
        self.median_ns = Some(samples[samples.len() / 2]);
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion { sample_size: 5, test_mode: false };
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                black_box((0..100u64).sum::<u64>())
            })
        });
        assert!(ran > 5);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { sample_size: 100, test_mode: true };
        let mut ran = 0u64;
        c.bench_function("once", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }
}
