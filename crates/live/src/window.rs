//! Watermark-driven ring of sliding aggregation windows.
//!
//! Each ingest worker owns one [`WindowRing`]. Records carry event time;
//! the ring assigns them to `floor(ts / window_ms)` windows whose
//! per-(group, route-rank) cells are the same bounded-memory
//! [`StreamingAggregation`] t-digest pairs the offline
//! [`edgeperf_analysis::StreamingDataset`] uses — so a finite replay
//! through the server reproduces the offline cells bit for bit.
//!
//! The *watermark* trails the maximum observed timestamp by the allowed
//! lateness. A window closes when the watermark passes its end: its cells
//! are flushed, summarized ([`CellSummary`]) and handed to the caller.
//! Records addressed at an already-closed window are rejected with the
//! typed [`EdgeperfError::LateRecord`] — never silently dropped.

use crate::record::LiveRecord;
use edgeperf_analysis::{
    AnalysisConfig, CompareOutcome, FxHashMap, GroupKey, StreamingAggregation,
};
use edgeperf_core::EdgeperfError;
use edgeperf_routing::Relationship;
use edgeperf_stats::dist::norm_inv_cdf;
use std::collections::BTreeMap;

/// One (group, route-rank) cell address within a window.
pub type CellKey = (GroupKey, u8);

/// Live analogue of `edgeperf_analysis::sink::StreamingCell`: the digest
/// pair plus the route annotations, accumulated with identical semantics
/// (first record pins the relationship; path flags are OR-ed).
#[derive(Debug, Clone)]
pub struct LiveCell {
    /// Metric sketches (MinRTT / HDratio digests + traffic bytes).
    pub agg: StreamingAggregation,
    /// Relationship of the route measured by this cell.
    pub relationship: Relationship,
    /// This route's AS path is longer than the preferred route's.
    pub longer_path: bool,
    /// This route is prepended more than the preferred route.
    pub more_prepended: bool,
}

impl LiveCell {
    fn new(relationship: Relationship) -> Self {
        LiveCell {
            agg: StreamingAggregation::new(),
            relationship,
            longer_path: false,
            more_prepended: false,
        }
    }

    fn push(&mut self, r: &LiveRecord) {
        self.agg.push(r.min_rtt_ms, r.hdratio, r.bytes);
        self.longer_path |= r.longer_path;
        self.more_prepended |= r.more_prepended;
    }
}

/// Plain-data summary of one flushed cell: everything the detector and
/// the query protocol need, with the medians and Price–Bonett variances
/// read from the digests through the exact same calls the offline
/// streaming pipeline uses (hence bit-identical to it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSummary {
    /// Sessions recorded.
    pub n: usize,
    /// Sessions with an HDratio.
    pub n_tested: usize,
    /// Traffic weight.
    pub bytes: u64,
    /// Median MinRTT (ms).
    pub min_rtt_p50: f64,
    /// Price–Bonett variance of the MinRTT median (None below 5 samples).
    pub min_rtt_var: Option<f64>,
    /// Median HDratio, if any session tested.
    pub hdratio_p50: Option<f64>,
    /// Price–Bonett variance of the HDratio median.
    pub hdratio_var: Option<f64>,
    /// Relationship of the route measured by this cell.
    pub relationship: Relationship,
    /// This route's AS path is longer than the preferred route's.
    pub longer_path: bool,
    /// This route is prepended more than the preferred route.
    pub more_prepended: bool,
}

impl CellSummary {
    /// Summarize a cell, flushing its digest buffers first.
    pub fn from_cell(cell: &mut LiveCell) -> CellSummary {
        cell.agg.flush();
        Self::from_aggregation(&cell.agg, cell.relationship, cell.longer_path, cell.more_prepended)
    }

    /// Summarize an already-flushed aggregation (the offline comparator
    /// path of the agreement tests).
    pub fn from_aggregation(
        agg: &StreamingAggregation,
        relationship: Relationship,
        longer_path: bool,
        more_prepended: bool,
    ) -> CellSummary {
        CellSummary {
            n: agg.n(),
            n_tested: agg.n_tested(),
            bytes: agg.bytes(),
            min_rtt_p50: agg.min_rtt_p50(),
            min_rtt_var: agg.min_rtt_median_variance(),
            hdratio_p50: agg.hdratio_p50(),
            hdratio_var: agg.hdratio_median_variance(),
            relationship,
            longer_path,
            more_prepended,
        }
    }
}

/// MinRTT difference of medians `a − b` with the Price–Bonett z-CI, under
/// the same validity rules — and the same arithmetic, hence bit-identical
/// outcomes — as [`compare_minrtt_streaming`] on the underlying digests.
pub fn compare_minrtt_summaries(
    cfg: &AnalysisConfig,
    a: &CellSummary,
    b: &CellSummary,
) -> CompareOutcome {
    if a.n < cfg.min_samples || b.n < cfg.min_samples {
        return CompareOutcome::Invalid;
    }
    let (Some(va), Some(vb)) = (a.min_rtt_var, b.min_rtt_var) else {
        return CompareOutcome::Invalid;
    };
    ci(cfg, a.min_rtt_p50 - b.min_rtt_p50, va, vb, cfg.max_ci_width_minrtt_ms)
}

/// HDratio difference of medians `a − b` (validity gated on the tested
/// session counts, matching the offline comparison's sample sizes).
pub fn compare_hdratio_summaries(
    cfg: &AnalysisConfig,
    a: &CellSummary,
    b: &CellSummary,
) -> CompareOutcome {
    if a.n_tested < cfg.min_samples || b.n_tested < cfg.min_samples {
        return CompareOutcome::Invalid;
    }
    let (Some(pa), Some(pb)) = (a.hdratio_p50, b.hdratio_p50) else {
        return CompareOutcome::Invalid;
    };
    let (Some(va), Some(vb)) = (a.hdratio_var, b.hdratio_var) else {
        return CompareOutcome::Invalid;
    };
    ci(cfg, pa - pb, va, vb, cfg.max_ci_width_hdratio)
}

fn ci(cfg: &AnalysisConfig, diff: f64, va: f64, vb: f64, max_width: f64) -> CompareOutcome {
    let z = norm_inv_cdf(0.5 + cfg.confidence / 2.0);
    let half = z * (va + vb).sqrt();
    if 2.0 * half >= max_width {
        return CompareOutcome::Invalid;
    }
    CompareOutcome::Valid { diff, lo: diff - half, hi: diff + half }
}

/// One window the watermark has passed, ready for detection and queries.
#[derive(Debug, Clone)]
pub struct ClosedWindow {
    /// Window index (`floor(ts / window_ms)`).
    pub index: u32,
    /// Cells in worker insertion order.
    pub cells: Vec<(CellKey, CellSummary)>,
}

/// Cells of one still-open window, in insertion order.
#[derive(Debug, Default)]
struct OpenWindow {
    cells: FxHashMap<CellKey, LiveCell>,
    order: Vec<CellKey>,
}

impl OpenWindow {
    fn push(&mut self, r: &LiveRecord) {
        let key = (r.group, r.route_rank);
        match self.cells.get_mut(&key) {
            Some(cell) => cell.push(r),
            None => {
                let mut cell = LiveCell::new(r.relationship);
                cell.push(r);
                self.cells.insert(key, cell);
                self.order.push(key);
            }
        }
    }

    fn close(mut self, index: u32) -> ClosedWindow {
        let cells = self
            .order
            .iter()
            .map(|key| {
                let cell = self.cells.get_mut(key).expect("ordered key present");
                (*key, CellSummary::from_cell(cell))
            })
            .collect();
        ClosedWindow { index, cells }
    }
}

/// Per-worker event-time windowing state; see the module docs.
#[derive(Debug)]
pub struct WindowRing {
    window_ms: f64,
    lateness_ms: f64,
    max_ts_ms: f64,
    /// Windows below this index are closed; records addressed at them are
    /// late. Derived from the watermark by one rule (`floor(wm / window)`)
    /// so the late check and the close sweep can never disagree.
    closed_below: u32,
    open: BTreeMap<u32, OpenWindow>,
}

impl WindowRing {
    /// Empty ring. `window_ms` and `lateness_ms` as in
    /// [`crate::LiveConfig`].
    pub fn new(window_ms: f64, lateness_ms: f64) -> Self {
        WindowRing {
            window_ms,
            lateness_ms,
            max_ts_ms: -1.0,
            closed_below: 0,
            open: BTreeMap::new(),
        }
    }

    /// Current watermark (ms); negative until the first record arrives.
    pub fn watermark_ms(&self) -> f64 {
        self.max_ts_ms - self.lateness_ms
    }

    /// Number of still-open windows (bounded by lateness / window + 2).
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }

    /// Ingest one record. Returns the windows this record's timestamp
    /// closed (usually none). Records behind the watermark — addressed at
    /// an already-closed window — are rejected as
    /// [`EdgeperfError::LateRecord`].
    pub fn push(&mut self, r: &LiveRecord) -> Result<Vec<ClosedWindow>, EdgeperfError> {
        if !r.ts_ms.is_finite() {
            return Err(EdgeperfError::NonFinite { field: "ts_ms".to_string(), value: r.ts_ms });
        }
        if r.ts_ms < 0.0 {
            return Err(EdgeperfError::NegativeTimestamp {
                field: "ts_ms".to_string(),
                value: r.ts_ms,
            });
        }
        // Window indices live in `u32` (ClosedWindow, the protocol, the
        // offline SessionRecord all agree); a saturating `as` cast here
        // used to collapse every far-future timestamp into window
        // u32::MAX — one never-closing window silently absorbing bad
        // telemetry. Compute in u64 and reject the unrepresentable.
        let index64 = (r.ts_ms / self.window_ms) as u64;
        let Ok(index) = u32::try_from(index64) else {
            return Err(EdgeperfError::WindowOverflow {
                ts_ms: r.ts_ms,
                window_ms: self.window_ms,
            });
        };
        if index < self.closed_below {
            return Err(EdgeperfError::LateRecord {
                ts_ms: r.ts_ms,
                watermark_ms: self.watermark_ms(),
            });
        }
        self.open.entry(index).or_default().push(r);
        if r.ts_ms > self.max_ts_ms {
            self.max_ts_ms = r.ts_ms;
            return Ok(self.advance());
        }
        Ok(Vec::new())
    }

    /// Close every window the watermark has passed.
    fn advance(&mut self) -> Vec<ClosedWindow> {
        let wm = self.watermark_ms();
        if wm < 0.0 {
            return Vec::new();
        }
        // The watermark trails max_ts, whose index was proven to fit in
        // `push` — but compute in u64 anyway so a saturate can never
        // silently reappear here if that invariant shifts.
        let boundary = u32::try_from((wm / self.window_ms) as u64).unwrap_or(u32::MAX);
        if boundary <= self.closed_below {
            return Vec::new();
        }
        self.closed_below = boundary;
        let mut closed = Vec::new();
        while let Some(entry) = self.open.first_entry() {
            let index = *entry.key();
            if index >= boundary {
                break;
            }
            closed.push(entry.remove().close(index));
        }
        closed
    }

    /// Close every open window regardless of the watermark (drain path).
    pub fn force_close(&mut self) -> Vec<ClosedWindow> {
        let open = std::mem::take(&mut self.open);
        if let Some(&last) = open.keys().next_back() {
            self.closed_below = self.closed_below.max(last.saturating_add(1));
        }
        open.into_iter().map(|(index, w)| w.close(index)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeperf_analysis::compare_minrtt_streaming;
    use edgeperf_routing::{PopId, Prefix};

    fn rec(ts_ms: f64, prefix: u32, rank: u8, rtt: f64) -> LiveRecord {
        LiveRecord {
            ts_ms,
            group: GroupKey {
                pop: PopId(1),
                prefix: Prefix::new(prefix << 16, 16),
                country: 1,
                continent: 0,
            },
            route_rank: rank,
            relationship: if rank == 0 { Relationship::PrivatePeer } else { Relationship::Transit },
            longer_path: rank > 0,
            more_prepended: false,
            min_rtt_ms: rtt,
            hdratio: Some((rtt / 100.0).clamp(0.0, 1.0)),
            bytes: 100,
        }
    }

    #[test]
    fn windows_close_when_watermark_passes() {
        // 100 ms windows, 50 ms lateness.
        let mut ring = WindowRing::new(100.0, 50.0);
        assert!(ring.push(&rec(10.0, 1, 0, 40.0)).unwrap().is_empty());
        assert!(ring.push(&rec(90.0, 1, 0, 41.0)).unwrap().is_empty());
        // ts 120: watermark 70, window 0 still open.
        assert!(ring.push(&rec(120.0, 1, 0, 42.0)).unwrap().is_empty());
        assert_eq!(ring.open_windows(), 2);
        // ts 160: watermark 110 passes window 0's end.
        let closed = ring.push(&rec(160.0, 1, 0, 43.0)).unwrap();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].index, 0);
        assert_eq!(closed[0].cells.len(), 1);
        assert_eq!(closed[0].cells[0].1.n, 2);
    }

    #[test]
    fn late_records_are_typed_rejects() {
        let mut ring = WindowRing::new(100.0, 0.0);
        ring.push(&rec(50.0, 1, 0, 40.0)).unwrap();
        let closed = ring.push(&rec(250.0, 1, 0, 41.0)).unwrap();
        assert_eq!(closed.len(), 1, "window 0 closed");
        let err = ring.push(&rec(60.0, 1, 0, 42.0)).unwrap_err();
        match err {
            EdgeperfError::LateRecord { ts_ms, watermark_ms } => {
                assert_eq!(ts_ms, 60.0);
                assert_eq!(watermark_ms, 250.0);
            }
            other => panic!("expected LateRecord, got {other:?}"),
        }
        assert_eq!(err.reason(), "late");
        // In-window disorder is fine: window 2 is still open, and 230 is
        // behind the 250 maximum but not behind the watermark's windows.
        assert!(ring.push(&rec(230.0, 1, 0, 42.0)).unwrap().is_empty());
    }

    #[test]
    fn bad_timestamps_are_rejected() {
        let mut ring = WindowRing::new(100.0, 0.0);
        assert_eq!(ring.push(&rec(-5.0, 1, 0, 40.0)).unwrap_err().reason(), "negative_timestamp");
        assert_eq!(ring.push(&rec(f64::NAN, 1, 0, 40.0)).unwrap_err().reason(), "non_finite");
    }

    /// The old saturating u32 cast mapped every timestamp past the
    /// u32 window horizon into window u32::MAX — a single never-closing
    /// window silently swallowing far-future telemetry. Indices at the
    /// horizon still work; beyond it the push is a typed reject.
    #[test]
    fn window_indices_beyond_the_u32_horizon_are_typed_rejects() {
        let window_ms = 100.0;
        let mut ring = WindowRing::new(window_ms, 0.0);
        // Highest representable window index: still accepted.
        let horizon_ts = u32::MAX as f64 * window_ms;
        assert!(ring.push(&rec(horizon_ts, 1, 0, 40.0)).is_ok());
        // One window past the horizon: rejected, never saturated.
        let over_ts = (u32::MAX as f64 + 1.0) * window_ms;
        let err = ring.push(&rec(over_ts, 1, 0, 41.0)).unwrap_err();
        match err {
            EdgeperfError::WindowOverflow { ts_ms, window_ms: w } => {
                assert_eq!(ts_ms, over_ts);
                assert_eq!(w, window_ms);
            }
            other => panic!("expected WindowOverflow, got {other:?}"),
        }
        assert_eq!(err.reason(), "window_overflow");
        // Far-future garbage (the motivating case: corrupt epoch units).
        assert_eq!(ring.push(&rec(1.0e18, 1, 0, 42.0)).unwrap_err().reason(), "window_overflow");
        // The ring still closes and drains normally afterwards.
        let closed = ring.force_close();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].index, u32::MAX);
        assert_eq!(ring.open_windows(), 0);
    }

    #[test]
    fn cells_are_bit_identical_to_direct_aggregation() {
        let mut ring = WindowRing::new(100.0, 0.0);
        let mut direct = StreamingAggregation::new();
        for i in 0..500 {
            let r = rec(i as f64 * 0.1, 7, 0, 30.0 + (i % 41) as f64 * 0.7);
            direct.push(r.min_rtt_ms, r.hdratio, r.bytes);
            ring.push(&r).unwrap();
        }
        direct.flush();
        let closed = ring.force_close();
        assert_eq!(closed.len(), 1);
        let (_, summary) = &closed[0].cells[0];
        let expected =
            CellSummary::from_aggregation(&direct, Relationship::PrivatePeer, false, false);
        assert_eq!(summary.n, expected.n);
        assert_eq!(summary.min_rtt_p50.to_bits(), expected.min_rtt_p50.to_bits());
        assert_eq!(summary.min_rtt_var.unwrap().to_bits(), expected.min_rtt_var.unwrap().to_bits());
        assert_eq!(summary.hdratio_p50.unwrap().to_bits(), expected.hdratio_p50.unwrap().to_bits());
    }

    #[test]
    fn summary_comparisons_match_streaming_comparisons() {
        let mut a = StreamingAggregation::new();
        let mut b = StreamingAggregation::new();
        for i in 0..200 {
            let u = (i as f64 * 0.618_033_988_749).fract() - 0.5;
            a.push(52.0 + 6.0 * u, Some((0.6 + 0.3 * u).clamp(0.0, 1.0)), 10);
            b.push(44.0 + 6.0 * u, Some((0.9 + 0.1 * u).clamp(0.0, 1.0)), 10);
        }
        a.flush();
        b.flush();
        let cfg = AnalysisConfig::default();
        let rel = Relationship::PrivatePeer;
        let sa = CellSummary::from_aggregation(&a, rel, false, false);
        let sb = CellSummary::from_aggregation(&b, rel, false, false);
        let direct = compare_minrtt_streaming(&cfg, &a, &b);
        let via_summary = compare_minrtt_summaries(&cfg, &sa, &sb);
        match (direct, via_summary) {
            (
                CompareOutcome::Valid { diff: d1, lo: l1, hi: h1 },
                CompareOutcome::Valid { diff: d2, lo: l2, hi: h2 },
            ) => {
                assert_eq!(d1.to_bits(), d2.to_bits());
                assert_eq!(l1.to_bits(), l2.to_bits());
                assert_eq!(h1.to_bits(), h2.to_bits());
            }
            other => panic!("expected both valid, got {other:?}"),
        }
        assert!(matches!(
            compare_hdratio_summaries(&cfg, &sb, &sa),
            CompareOutcome::Valid { diff, .. } if diff > 0.1
        ));
    }

    #[test]
    fn force_close_empties_the_ring_and_marks_windows_closed() {
        let mut ring = WindowRing::new(100.0, 1_000.0);
        ring.push(&rec(10.0, 1, 0, 40.0)).unwrap();
        ring.push(&rec(310.0, 2, 1, 50.0)).unwrap();
        let closed = ring.force_close();
        assert_eq!(closed.len(), 2);
        assert_eq!(ring.open_windows(), 0);
        assert_eq!(ring.push(&rec(10.0, 1, 0, 40.0)).unwrap_err().reason(), "late");
    }

    #[test]
    fn open_window_count_is_bounded_by_lateness() {
        let mut ring = WindowRing::new(100.0, 250.0);
        for i in 0..10_000 {
            ring.push(&rec(i as f64 * 10.0, 1, 0, 40.0)).unwrap();
            assert!(ring.open_windows() <= 5, "{} open at i={i}", ring.open_windows());
        }
    }
}
