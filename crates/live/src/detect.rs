//! Online degradation detection over closed windows.
//!
//! Mirrors the offline pipeline (`edgeperf_analysis::degradation` +
//! `classify`) one window at a time: the baseline of a group is the
//! window whose preferred-route p50 sits at the 10th percentile of the
//! retained history (90th for HDratio), each closing window is compared
//! against it with the Price–Bonett z-CI, and an *event* needs the CI
//! lower bound to clear the threshold. Event series feed the paper's
//! temporal classifier ([`classify_group`]) and an episode tracker that
//! flags degradations as they open and close.
//!
//! The one deliberate divergence from the offline algorithm: offline, the
//! baseline is picked over the whole study and every window re-assessed
//! against it; online, each window is assessed against the baseline of
//! the history retained *at close time*. Tests bound the difference.

use crate::window::{
    compare_hdratio_summaries, compare_minrtt_summaries, CellSummary, ClosedWindow,
};
use edgeperf_analysis::{
    classify_group, AnalysisConfig, CompareOutcome, DegradationMetric, FxHashMap, GroupKey,
    TemporalClass, WindowStatus,
};
use edgeperf_stats::quantile::quantile_unsorted;
use std::collections::VecDeque;

/// An episode boundary the detector observed while folding in a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeChange {
    /// The affected user group.
    pub group: GroupKey,
    /// Which metric degraded.
    pub metric: DegradationMetric,
    /// The window at which the episode opened or closed.
    pub window: u32,
    /// True when a degradation episode starts, false when it ends.
    pub opened: bool,
    /// (diff, lo, hi) of the comparison that opened the episode.
    pub diff: Option<(f64, f64, f64)>,
}

const METRICS: [DegradationMetric; 2] = [DegradationMetric::MinRtt, DegradationMetric::HdRatio];

fn metric_slot(metric: DegradationMetric) -> usize {
    match metric {
        DegradationMetric::MinRtt => 0,
        DegradationMetric::HdRatio => 1,
    }
}

#[derive(Debug, Default)]
struct GroupState {
    /// Closed preferred-route summaries, oldest first.
    history: VecDeque<(u32, CellSummary)>,
    /// Contiguous per-window status series per metric (gaps filled with
    /// `NoTraffic`), oldest first; `statuses[m].0` is the first window.
    statuses: [(u32, VecDeque<WindowStatus>); 2],
    /// Window at which the currently-open episode started, per metric.
    open_episode: [Option<u32>; 2],
}

/// Per-worker online detector state; see the module docs.
#[derive(Debug)]
pub struct OnlineDetector {
    cfg: AnalysisConfig,
    thresholds: [f64; 2],
    retention: usize,
    groups: FxHashMap<GroupKey, GroupState>,
    keys: Vec<GroupKey>,
    events: [u64; 2],
    episodes_opened: u64,
}

impl OnlineDetector {
    /// Empty detector retaining at most `retention` windows per group.
    pub fn new(
        cfg: AnalysisConfig,
        minrtt_threshold_ms: f64,
        hdratio_threshold: f64,
        retention: usize,
    ) -> Self {
        OnlineDetector {
            cfg,
            thresholds: [minrtt_threshold_ms, hdratio_threshold],
            retention: retention.max(1),
            groups: FxHashMap::default(),
            keys: Vec::new(),
            events: [0; 2],
            episodes_opened: 0,
        }
    }

    /// Fold one closed window in, returning any episode boundaries.
    pub fn observe(&mut self, window: &ClosedWindow) -> Vec<EpisodeChange> {
        let mut changes = Vec::new();
        for ((group, rank), summary) in &window.cells {
            if *rank != 0 {
                continue;
            }
            if !self.groups.contains_key(group) {
                self.keys.push(*group);
                self.groups.insert(*group, GroupState::default());
            }
            let state = self.groups.get_mut(group).expect("group just ensured");
            // Retain the summary for future baselines.
            state.history.push_back((window.index, *summary));
            while state.history.len() > self.retention {
                state.history.pop_front();
            }
            for metric in METRICS {
                let m = metric_slot(metric);
                let outcome = assess(&self.cfg, &state.history, metric, *summary);
                let status = match outcome {
                    Some(CompareOutcome::Valid { lo, .. }) if lo > self.thresholds[m] => {
                        self.events[m] += 1;
                        WindowStatus::Event
                    }
                    Some(CompareOutcome::Valid { .. }) => WindowStatus::Quiet,
                    _ => WindowStatus::Invalid,
                };
                push_status(&mut state.statuses[m], window.index, status, self.retention);
                // Episode boundaries.
                match (state.open_episode[m], status) {
                    (None, WindowStatus::Event) => {
                        state.open_episode[m] = Some(window.index);
                        self.episodes_opened += 1;
                        changes.push(EpisodeChange {
                            group: *group,
                            metric,
                            window: window.index,
                            opened: true,
                            diff: match outcome {
                                Some(CompareOutcome::Valid { diff, lo, hi }) => {
                                    Some((diff, lo, hi))
                                }
                                _ => None,
                            },
                        });
                    }
                    (Some(_), s) if s != WindowStatus::Event => {
                        state.open_episode[m] = None;
                        changes.push(EpisodeChange {
                            group: *group,
                            metric,
                            window: window.index,
                            opened: false,
                            diff: None,
                        });
                    }
                    _ => {}
                }
            }
        }
        changes
    }

    /// Distinct preferred-route groups observed.
    pub fn group_count(&self) -> usize {
        self.keys.len()
    }

    /// Confident degradation events recorded for `metric`.
    pub fn event_count(&self, metric: DegradationMetric) -> u64 {
        self.events[metric_slot(metric)]
    }

    /// Episodes opened so far (across both metrics).
    pub fn episodes_opened(&self) -> u64 {
        self.episodes_opened
    }

    /// Episodes currently open (across both metrics).
    pub fn episodes_open(&self) -> usize {
        self.groups.values().flat_map(|s| s.open_episode.iter()).flatten().count()
    }

    /// Current temporal class of every group for `metric`, in first-seen
    /// order, from the retained status series.
    pub fn classes(&self, metric: DegradationMetric) -> Vec<(GroupKey, TemporalClass)> {
        let m = metric_slot(metric);
        self.keys
            .iter()
            .map(|key| {
                let state = &self.groups[key];
                let statuses: Vec<WindowStatus> = state.statuses[m].1.iter().copied().collect();
                (*key, classify_group(&self.cfg, &statuses))
            })
            .collect()
    }

    /// The latest per-metric window status of `group`, if observed.
    pub fn latest_status(
        &self,
        group: &GroupKey,
        metric: DegradationMetric,
    ) -> Option<WindowStatus> {
        self.groups.get(group)?.statuses[metric_slot(metric)].1.back().copied()
    }
}

/// Mirror of `degradation_events`' per-window assessment over the
/// retained history: pick the baseline window, then compare the current
/// summary against it. `None` means no valid baseline exists yet.
fn assess(
    cfg: &AnalysisConfig,
    history: &VecDeque<(u32, CellSummary)>,
    metric: DegradationMetric,
    current: CellSummary,
) -> Option<CompareOutcome> {
    let mut p50s: Vec<(usize, f64)> = Vec::new();
    for (i, (_, s)) in history.iter().enumerate() {
        match metric {
            DegradationMetric::MinRtt => {
                if s.n >= cfg.min_samples {
                    p50s.push((i, s.min_rtt_p50));
                }
            }
            DegradationMetric::HdRatio => {
                if s.n_tested >= cfg.min_samples {
                    if let Some(p) = s.hdratio_p50 {
                        p50s.push((i, p));
                    }
                }
            }
        }
    }
    if p50s.is_empty() {
        return None;
    }
    let values: Vec<f64> = p50s.iter().map(|&(_, v)| v).collect();
    let target = match metric {
        DegradationMetric::MinRtt => quantile_unsorted(&values, 0.10),
        DegradationMetric::HdRatio => quantile_unsorted(&values, 0.90),
    };
    let (baseline_i, _) = p50s
        .iter()
        .copied()
        .min_by(|a, b| (a.1 - target).abs().total_cmp(&(b.1 - target).abs()))
        .expect("non-empty candidates");
    let baseline = history[baseline_i].1;
    Some(match metric {
        // Degradation in latency: current − baseline.
        DegradationMetric::MinRtt => compare_minrtt_summaries(cfg, &current, &baseline),
        // Degradation in goodput: baseline − current.
        DegradationMetric::HdRatio => compare_hdratio_summaries(cfg, &baseline, &current),
    })
}

/// Append `status` at `window`, padding skipped windows with `NoTraffic`
/// and evicting from the front past `retention`.
fn push_status(
    series: &mut (u32, VecDeque<WindowStatus>),
    window: u32,
    status: WindowStatus,
    retention: usize,
) {
    let (start, statuses) = series;
    if statuses.is_empty() {
        *start = window;
    }
    // Checked conversion (not a cast): the deque is retention-bounded,
    // and window indices near u32::MAX must not overflow the add.
    let len = u32::try_from(statuses.len()).unwrap_or(u32::MAX);
    let next = start.saturating_add(len);
    if window >= next {
        for _ in next..window {
            statuses.push_back(WindowStatus::NoTraffic);
        }
        statuses.push_back(status);
    } else {
        // A worker only observes strictly increasing windows; treat a
        // replayed index defensively by overwriting in place.
        let i = (window - *start) as usize;
        statuses[i] = status;
    }
    while statuses.len() > retention {
        statuses.pop_front();
        *start += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{CellKey, LiveCell};
    use edgeperf_analysis::StreamingAggregation;
    use edgeperf_routing::{PopId, Prefix, Relationship};

    fn group() -> GroupKey {
        GroupKey { pop: PopId(0), prefix: Prefix::new(0x0A000000, 16), country: 0, continent: 0 }
    }

    fn window_of(index: u32, center_rtt: f64, hdratio: f64, n: usize) -> ClosedWindow {
        let mut agg = StreamingAggregation::new();
        for i in 0..n {
            let jitter = (i as f64 - n as f64 / 2.0) * 0.05;
            agg.push(center_rtt + jitter, Some((hdratio + jitter / 100.0).clamp(0.0, 1.0)), 100);
        }
        let mut cell = LiveCell {
            agg,
            relationship: Relationship::PrivatePeer,
            longer_path: false,
            more_prepended: false,
        };
        let key: CellKey = (group(), 0);
        ClosedWindow { index, cells: vec![(key, CellSummary::from_cell(&mut cell))] }
    }

    fn detector() -> OnlineDetector {
        OnlineDetector::new(AnalysisConfig::default(), 5.0, 0.05, 64)
    }

    #[test]
    fn stable_stream_stays_quiet() {
        let mut d = detector();
        for w in 0..10 {
            assert!(d.observe(&window_of(w, 40.0, 0.95, 60)).is_empty());
        }
        assert_eq!(d.event_count(DegradationMetric::MinRtt), 0);
        assert_eq!(d.episodes_open(), 0);
        assert_eq!(d.group_count(), 1);
    }

    #[test]
    fn latency_spike_opens_and_closes_an_episode() {
        let mut d = detector();
        for w in 0..6 {
            d.observe(&window_of(w, 40.0, 0.95, 60));
        }
        let changes = d.observe(&window_of(6, 70.0, 0.95, 60));
        assert_eq!(changes.len(), 1);
        assert!(changes[0].opened);
        assert_eq!(changes[0].metric, DegradationMetric::MinRtt);
        assert_eq!(changes[0].window, 6);
        let (diff, lo, _) = changes[0].diff.unwrap();
        assert!((diff - 30.0).abs() < 2.0, "diff = {diff}");
        assert!(lo > 5.0);
        assert_eq!(d.episodes_open(), 1);
        let changes = d.observe(&window_of(7, 40.0, 0.95, 60));
        assert_eq!(changes.len(), 1);
        assert!(!changes[0].opened);
        assert_eq!(d.episodes_open(), 0);
        assert_eq!(d.episodes_opened(), 1);
        assert_eq!(d.event_count(DegradationMetric::MinRtt), 1);
    }

    #[test]
    fn hdratio_collapse_is_detected() {
        let mut d = detector();
        for w in 0..6 {
            d.observe(&window_of(w, 40.0, 0.95, 60));
        }
        let changes = d.observe(&window_of(6, 40.0, 0.30, 60));
        let hd: Vec<_> =
            changes.iter().filter(|c| c.metric == DegradationMetric::HdRatio).collect();
        assert_eq!(hd.len(), 1);
        assert!(hd[0].opened);
        assert_eq!(d.event_count(DegradationMetric::HdRatio), 1);
    }

    #[test]
    fn sparse_windows_are_invalid_not_events() {
        let mut d = detector();
        for w in 0..4 {
            d.observe(&window_of(w, 40.0, 0.95, 60));
        }
        // 5 samples < min_samples: invalid, no event either way.
        assert!(d.observe(&window_of(4, 90.0, 0.2, 5)).is_empty());
        assert_eq!(
            d.latest_status(&group(), DegradationMetric::MinRtt),
            Some(WindowStatus::Invalid)
        );
    }

    #[test]
    fn gaps_fill_as_no_traffic_and_classes_come_out() {
        let mut d = detector();
        for w in 0..3 {
            d.observe(&window_of(w, 40.0, 0.95, 60));
        }
        d.observe(&window_of(10, 40.0, 0.95, 60));
        // 4 covered of 11 windows < 60% coverage → ignored.
        let classes = d.classes(DegradationMetric::MinRtt);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].1, TemporalClass::Ignored);
    }

    #[test]
    fn continuous_degradation_classifies_continuous() {
        let mut d = detector();
        // Enough good windows that the p10 baseline stays at the good
        // level (like the offline baseline, it is a quantile over window
        // medians), then persistently bad.
        for w in 0..3 {
            d.observe(&window_of(w, 40.0, 0.95, 60));
        }
        for w in 3..12 {
            d.observe(&window_of(w, 70.0, 0.95, 60));
        }
        let classes = d.classes(DegradationMetric::MinRtt);
        assert_eq!(classes[0].1, TemporalClass::Continuous);
        assert!(d.event_count(DegradationMetric::MinRtt) >= 8);
    }

    #[test]
    fn retention_bounds_history_and_statuses() {
        let mut d = OnlineDetector::new(AnalysisConfig::default(), 5.0, 0.05, 8);
        for w in 0..100 {
            d.observe(&window_of(w, 40.0, 0.95, 60));
        }
        let state = &d.groups[&group()];
        assert!(state.history.len() <= 8);
        assert!(state.statuses[0].1.len() <= 8);
        assert_eq!(state.statuses[0].0, 92);
    }
}
