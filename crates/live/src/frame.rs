//! The compact binary wire format for live ingest.
//!
//! JSONL is the default wire format and stays fully supported; binary
//! mode exists for load generators and edge relays that already hold
//! post-estimator values and do not want to pay JSON formatting and
//! parsing on the hot path. A connection opts in by sending an 8-byte
//! preamble as its very first bytes; anything else (in particular the
//! `{` that opens every JSONL record) leaves the connection in line
//! mode, so negotiation is silent and old clients need no changes.
//!
//! ## Preamble (8 bytes)
//!
//! | offset | size | value                                    |
//! |-------:|-----:|------------------------------------------|
//! | 0      | 4    | magic `EPB1`                             |
//! | 4      | 1    | protocol version (currently `1`)         |
//! | 5      | 1    | frame body length the client will send   |
//! | 6      | 2    | reserved, must be zero                   |
//!
//! The declared body length must be at least [`FRAME_BODY_LEN`]; a
//! larger value is accepted and the surplus bytes of every frame are
//! skipped, so a newer client with appended fields still interoperates
//! with this decoder (forward compatibility). The server sends no
//! acknowledgement — the first bytes commit the mode.
//!
//! Byte 6 is a flag byte (it was reserved-zero before the resume
//! protocol, so old preambles still parse identically): bit 0
//! ([`PREAMBLE_FLAG_HELLO`]) announces that a 20-byte hello block
//! follows the preamble — magic `EPH1`, then session id and epoch as
//! u64 LE ([`hello_block`]/[`parse_hello`]). The server replies
//! `{"acked":N}\n` before any frames flow, and the client resumes its
//! replay from record N (DESIGN.md §15). Byte 7 stays reserved-zero.
//!
//! ## Frame (1 + body-length bytes)
//!
//! A 1-byte body length prefix (redundantly repeated per frame so a
//! truncated stream is detected deterministically), then the
//! little-endian body:
//!
//! | offset | size | field        | encoding                         |
//! |-------:|-----:|--------------|----------------------------------|
//! | 0      | 8    | `ts_ms`      | f64 LE bits                      |
//! | 8      | 8    | `min_rtt_ms` | f64 LE bits                      |
//! | 16     | 8    | `hdratio`    | f64 LE bits, 0.0 when absent     |
//! | 24     | 8    | `bytes`      | u64 LE                           |
//! | 32     | 4    | prefix base  | u32 LE (host bits zero)          |
//! | 36     | 2    | pop          | u16 LE                           |
//! | 38     | 2    | country      | u16 LE                           |
//! | 40     | 1    | prefix len   | u8, 0–32                         |
//! | 41     | 1    | continent    | u8                               |
//! | 42     | 1    | route rank   | u8                               |
//! | 43     | 1    | meta         | packed flags, see below          |
//!
//! Meta byte: bits 0–1 relationship (0 private peer, 1 public peer,
//! 2 transit, 3 invalid), bit 2 `longer_path`, bit 3 `more_prepended`,
//! bit 4 `hdratio` present. Remaining bits must be zero.
//!
//! Floats travel as raw IEEE-754 bits, so a record round-trips
//! **bit-identically** — the property the JSONL path buys with full
//! `{:?}` formatting, here for free. Any malformed frame is a typed
//! [`EdgeperfError::Frame`] reject; unlike a bad JSONL line there is no
//! newline to resynchronize on, so the server closes the connection
//! after counting the reject.

use edgeperf_analysis::GroupKey;
use edgeperf_core::EdgeperfError;
use edgeperf_routing::{PopId, Prefix, Relationship};

use crate::record::LiveRecord;

/// First four bytes of a binary-mode connection.
pub const FRAME_MAGIC: [u8; 4] = *b"EPB1";
/// Protocol version this decoder speaks.
pub const FRAME_VERSION: u8 = 1;
/// Total preamble length in bytes.
pub const PREAMBLE_LEN: usize = 8;
/// Body length of a version-1 frame.
pub const FRAME_BODY_LEN: usize = 44;
/// On-wire length of a version-1 frame (length prefix + body).
pub const FRAME_WIRE_LEN: usize = 1 + FRAME_BODY_LEN;
/// Preamble flag (byte 6, bit 0): a hello block follows the preamble.
pub const PREAMBLE_FLAG_HELLO: u8 = 0x01;
/// First four bytes of the binary hello block.
pub const HELLO_MAGIC: [u8; 4] = *b"EPH1";
/// Total hello block length: magic + session u64 + epoch u64.
pub const HELLO_LEN: usize = 20;

const META_RELATIONSHIP_MASK: u8 = 0b0000_0011;
const META_LONGER_PATH: u8 = 0b0000_0100;
const META_MORE_PREPENDED: u8 = 0b0000_1000;
const META_HAS_HDRATIO: u8 = 0b0001_0000;
const META_KNOWN_BITS: u8 = 0b0001_1111;

/// The 8-byte preamble a client sends to switch the connection to
/// binary mode.
pub fn preamble() -> [u8; PREAMBLE_LEN] {
    let mut p = [0u8; PREAMBLE_LEN];
    p[..4].copy_from_slice(&FRAME_MAGIC);
    p[4] = FRAME_VERSION;
    p[5] = FRAME_BODY_LEN as u8;
    p
}

/// The preamble variant announcing a hello block (resume protocol).
pub fn preamble_with_hello() -> [u8; PREAMBLE_LEN] {
    let mut p = preamble();
    p[6] = PREAMBLE_FLAG_HELLO;
    p
}

/// Validate a complete preamble. Returns the declared frame body length
/// and whether a [`hello_block`] follows the preamble.
pub fn parse_preamble(p: &[u8; PREAMBLE_LEN]) -> Result<(usize, bool), EdgeperfError> {
    debug_assert_eq!(p[..4], FRAME_MAGIC, "caller matches magic before parsing");
    if p[4] != FRAME_VERSION {
        return Err(EdgeperfError::Frame {
            message: format!("unsupported protocol version {}", p[4]),
        });
    }
    let body_len = p[5] as usize;
    if body_len < FRAME_BODY_LEN {
        return Err(EdgeperfError::Frame {
            message: format!("declared body length {body_len} below minimum {FRAME_BODY_LEN}"),
        });
    }
    if p[6] & !PREAMBLE_FLAG_HELLO != 0 || p[7] != 0 {
        return Err(EdgeperfError::Frame {
            message: format!("reserved preamble bytes nonzero ({}, {})", p[6], p[7]),
        });
    }
    Ok((body_len, p[6] & PREAMBLE_FLAG_HELLO != 0))
}

/// Encode the hello block: session id and reconnect epoch.
pub fn hello_block(session: u64, epoch: u64) -> [u8; HELLO_LEN] {
    let mut b = [0u8; HELLO_LEN];
    b[..4].copy_from_slice(&HELLO_MAGIC);
    b[4..12].copy_from_slice(&session.to_le_bytes());
    b[12..20].copy_from_slice(&epoch.to_le_bytes());
    b
}

/// Decode a hello block into `(session, epoch)`.
pub fn parse_hello(b: &[u8; HELLO_LEN]) -> Result<(u64, u64), EdgeperfError> {
    if b[..4] != HELLO_MAGIC {
        return Err(EdgeperfError::Frame {
            message: format!("bad hello magic {:02x}{:02x}{:02x}{:02x}", b[0], b[1], b[2], b[3]),
        });
    }
    let session = u64::from_le_bytes(b[4..12].try_into().expect("8-byte slice"));
    let epoch = u64::from_le_bytes(b[12..20].try_into().expect("8-byte slice"));
    Ok((session, epoch))
}

fn relationship_code(rel: Relationship) -> u8 {
    match rel {
        Relationship::PrivatePeer => 0,
        Relationship::PublicPeer => 1,
        Relationship::Transit => 2,
    }
}

/// Encode a record as one version-1 wire frame.
pub fn encode_frame(r: &LiveRecord) -> [u8; FRAME_WIRE_LEN] {
    let mut f = [0u8; FRAME_WIRE_LEN];
    f[0] = FRAME_BODY_LEN as u8;
    let b = &mut f[1..];
    b[0..8].copy_from_slice(&r.ts_ms.to_le_bytes());
    b[8..16].copy_from_slice(&r.min_rtt_ms.to_le_bytes());
    b[16..24].copy_from_slice(&r.hdratio.unwrap_or(0.0).to_le_bytes());
    b[24..32].copy_from_slice(&r.bytes.to_le_bytes());
    b[32..36].copy_from_slice(&r.group.prefix.base.to_le_bytes());
    b[36..38].copy_from_slice(&r.group.pop.0.to_le_bytes());
    b[38..40].copy_from_slice(&r.group.country.to_le_bytes());
    b[40] = r.group.prefix.len;
    b[41] = r.group.continent;
    b[42] = r.route_rank;
    let mut meta = relationship_code(r.relationship);
    if r.longer_path {
        meta |= META_LONGER_PATH;
    }
    if r.more_prepended {
        meta |= META_MORE_PREPENDED;
    }
    if r.hdratio.is_some() {
        meta |= META_HAS_HDRATIO;
    }
    b[43] = meta;
    f
}

fn le_f64(b: &[u8]) -> f64 {
    f64::from_le_bytes(b.try_into().expect("8-byte slice"))
}

/// Decode one frame *body* (the bytes after the length prefix; any
/// forward-compat surplus already stripped by the caller).
///
/// Validation mirrors the JSONL path: non-finite or negative
/// `min_rtt_ms` is [`EdgeperfError::InvalidMinRtt`], a non-finite
/// flagged `hdratio` is [`EdgeperfError::NonFinite`], and structurally
/// impossible packed fields (relationship code 3, prefix length > 32,
/// unknown meta bits, non-finite `ts_ms`) are [`EdgeperfError::Frame`].
pub fn decode_body(b: &[u8]) -> Result<LiveRecord, EdgeperfError> {
    debug_assert!(b.len() >= FRAME_BODY_LEN, "caller checks the length prefix");
    let meta = b[43];
    if meta & !META_KNOWN_BITS != 0 {
        return Err(EdgeperfError::Frame { message: format!("unknown meta bits {meta:#04x}") });
    }
    let relationship = match meta & META_RELATIONSHIP_MASK {
        0 => Relationship::PrivatePeer,
        1 => Relationship::PublicPeer,
        2 => Relationship::Transit,
        _ => return Err(EdgeperfError::Frame { message: "relationship code 3 is invalid".into() }),
    };
    let prefix_len = b[40];
    if prefix_len > 32 {
        return Err(EdgeperfError::Frame {
            message: format!("prefix length {prefix_len} exceeds 32"),
        });
    }
    let ts_ms = le_f64(&b[0..8]);
    if !ts_ms.is_finite() || ts_ms < 0.0 {
        return Err(EdgeperfError::Frame { message: format!("invalid ts_ms {ts_ms}") });
    }
    let min_rtt_ms = le_f64(&b[8..16]);
    if !min_rtt_ms.is_finite() || min_rtt_ms < 0.0 {
        return Err(EdgeperfError::InvalidMinRtt { value: min_rtt_ms });
    }
    let hdratio = if meta & META_HAS_HDRATIO != 0 {
        let h = le_f64(&b[16..24]);
        if !h.is_finite() {
            return Err(EdgeperfError::NonFinite { field: "hdratio".into(), value: h });
        }
        Some(h)
    } else {
        None
    };
    let base = u32::from_le_bytes(b[32..36].try_into().expect("4-byte slice"));
    Ok(LiveRecord {
        ts_ms,
        group: GroupKey {
            pop: PopId(u16::from_le_bytes(b[36..38].try_into().expect("2-byte slice"))),
            prefix: Prefix::new(base, prefix_len),
            country: u16::from_le_bytes(b[38..40].try_into().expect("2-byte slice")),
            continent: b[41],
        },
        route_rank: b[42],
        relationship,
        longer_path: meta & META_LONGER_PATH != 0,
        more_prepended: meta & META_MORE_PREPENDED != 0,
        min_rtt_ms,
        hdratio,
        bytes: u64::from_le_bytes(b[24..32].try_into().expect("8-byte slice")),
    })
}

/// Incremental frame decoder over a reusable read buffer.
///
/// The reader loop appends raw socket bytes via [`writable`] +
/// [`advance`] and drains complete frames via [`next_record`]; partially
/// received frames stay buffered across reads, and consumed bytes are
/// compacted to the front only when the buffer would otherwise grow —
/// no per-record allocation.
///
/// [`writable`]: FrameDecoder::writable
/// [`advance`]: FrameDecoder::advance
/// [`next_record`]: FrameDecoder::next_record
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Start of unconsumed bytes in `buf`.
    head: usize,
    /// Frame body length declared in the preamble (≥ [`FRAME_BODY_LEN`];
    /// bytes past [`FRAME_BODY_LEN`] are skipped per frame).
    body_len: usize,
}

impl FrameDecoder {
    /// A decoder for frames of the declared `body_len`, with `capacity`
    /// bytes of initial buffer (grown only if one read outpaces it).
    pub fn new(body_len: usize, capacity: usize) -> Self {
        let capacity = capacity.max(1 + body_len);
        FrameDecoder { buf: Vec::with_capacity(capacity), head: 0, body_len }
    }

    /// Number of buffered, not yet consumed bytes.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.head
    }

    fn filled(&self) -> usize {
        self.buf.len()
    }

    /// The spare region to read socket bytes into. Always non-empty.
    pub fn writable(&mut self) -> &mut [u8] {
        // Compact (or grow) only when the tail is exhausted, so steady
        // state is a cheap copy of at most one partial frame.
        if self.buf.capacity() == self.buf.len() {
            if self.head > 0 {
                self.buf.copy_within(self.head.., 0);
                let pending = self.buf.len() - self.head;
                self.buf.truncate(pending);
                self.head = 0;
            }
            if self.buf.capacity() == self.buf.len() {
                self.buf.reserve(1 + self.body_len);
            }
        }
        let len = self.buf.len();
        let cap = self.buf.capacity();
        // Hand out the uninitialized tail as zeroed spare space.
        self.buf.resize(cap, 0);
        &mut self.buf[len..]
    }

    /// Record that `n` bytes of the last [`writable`] slice were filled.
    ///
    /// [`writable`]: FrameDecoder::writable
    pub fn advance(&mut self, n: usize, writable_len: usize) {
        debug_assert!(n <= writable_len);
        let filled = self.filled() - (writable_len - n);
        self.buf.truncate(filled);
    }

    /// Decode the next complete frame, if one is buffered.
    ///
    /// Returns `Ok(None)` when more bytes are needed, and a typed error
    /// for a malformed frame (the caller closes the connection, so the
    /// decoder's state past the error is irrelevant).
    pub fn next_record(&mut self) -> Result<Option<LiveRecord>, EdgeperfError> {
        let pending = &self.buf[self.head..];
        let Some(&len_prefix) = pending.first() else {
            return Ok(None);
        };
        let frame_body = len_prefix as usize;
        if frame_body < FRAME_BODY_LEN {
            return Err(EdgeperfError::Frame {
                message: format!("length prefix {frame_body} below minimum {FRAME_BODY_LEN}"),
            });
        }
        if frame_body != self.body_len {
            return Err(EdgeperfError::Frame {
                message: format!(
                    "length prefix {frame_body} disagrees with negotiated body length {}",
                    self.body_len
                ),
            });
        }
        if pending.len() < 1 + frame_body {
            return Ok(None);
        }
        let record = decode_body(&pending[1..1 + FRAME_BODY_LEN])?;
        self.head += 1 + frame_body;
        if self.head == self.buf.len() {
            // Tail fully drained: reset without touching the bytes.
            self.buf.clear();
            self.head = 0;
        }
        Ok(Some(record))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(hdratio: Option<f64>, relationship: Relationship) -> LiveRecord {
        LiveRecord {
            ts_ms: 1_234_567.875,
            group: GroupKey {
                pop: PopId(7),
                prefix: Prefix::new(0x0a00_0000, 24),
                country: 840,
                continent: 3,
            },
            route_rank: 2,
            relationship,
            longer_path: true,
            more_prepended: false,
            min_rtt_ms: 41.0625,
            hdratio,
            bytes: 123_456_789_012,
        }
    }

    /// Feed bytes the way the reader loop does: fill whatever the
    /// decoder hands out, however small, until the piece is consumed.
    fn feed(dec: &mut FrameDecoder, mut piece: &[u8]) {
        while !piece.is_empty() {
            let w = dec.writable();
            let wlen = w.len();
            let n = piece.len().min(wlen);
            w[..n].copy_from_slice(&piece[..n]);
            dec.advance(n, wlen);
            piece = &piece[n..];
        }
    }

    fn assert_bit_identical(a: &LiveRecord, b: &LiveRecord) {
        assert_eq!(a.ts_ms.to_bits(), b.ts_ms.to_bits());
        assert_eq!(a.group, b.group);
        assert_eq!(a.route_rank, b.route_rank);
        assert_eq!(a.relationship, b.relationship);
        assert_eq!(a.longer_path, b.longer_path);
        assert_eq!(a.more_prepended, b.more_prepended);
        assert_eq!(a.min_rtt_ms.to_bits(), b.min_rtt_ms.to_bits());
        assert_eq!(a.hdratio.map(f64::to_bits), b.hdratio.map(f64::to_bits));
        assert_eq!(a.bytes, b.bytes);
    }

    #[test]
    fn frames_round_trip_bit_exactly() {
        for rel in [Relationship::PrivatePeer, Relationship::PublicPeer, Relationship::Transit] {
            // Awkward f64 bits (0.1 has no exact binary form) must survive.
            for hdratio in [None, Some(0.1), Some(0.0), Some(1.0)] {
                let mut r = sample(hdratio, rel);
                r.min_rtt_ms = 0.1 + 0.2; // 0.30000000000000004
                let wire = encode_frame(&r);
                assert_eq!(wire[0] as usize, FRAME_BODY_LEN);
                let back = decode_body(&wire[1..]).unwrap();
                assert_bit_identical(&r, &back);
            }
        }
    }

    #[test]
    fn absent_hdratio_is_distinct_from_zero() {
        let absent = encode_frame(&sample(None, Relationship::Transit));
        let zero = encode_frame(&sample(Some(0.0), Relationship::Transit));
        assert_eq!(decode_body(&absent[1..]).unwrap().hdratio, None);
        assert_eq!(decode_body(&zero[1..]).unwrap().hdratio, Some(0.0));
    }

    #[test]
    fn preamble_parses_and_rejects() {
        let p = preamble();
        assert_eq!(p[..4], FRAME_MAGIC);
        assert_eq!(parse_preamble(&p).unwrap(), (FRAME_BODY_LEN, false));

        let mut bad = preamble();
        bad[4] = 9;
        assert_eq!(parse_preamble(&bad).unwrap_err().reason(), "frame");

        let mut short = preamble();
        short[5] = FRAME_BODY_LEN as u8 - 1;
        assert_eq!(parse_preamble(&short).unwrap_err().reason(), "frame");

        let mut reserved = preamble();
        reserved[7] = 1;
        assert_eq!(parse_preamble(&reserved).unwrap_err().reason(), "frame");

        // Only bit 0 of the flag byte is defined.
        let mut flags = preamble();
        flags[6] = 0x02;
        assert_eq!(parse_preamble(&flags).unwrap_err().reason(), "frame");

        // Forward compat: a longer declared body is fine.
        let mut longer = preamble();
        longer[5] = FRAME_BODY_LEN as u8 + 8;
        assert_eq!(parse_preamble(&longer).unwrap(), (FRAME_BODY_LEN + 8, false));
    }

    #[test]
    fn hello_block_round_trips_and_rejects_bad_magic() {
        let p = preamble_with_hello();
        assert_eq!(parse_preamble(&p).unwrap(), (FRAME_BODY_LEN, true));
        for (session, epoch) in [(0u64, 0u64), (7, 3), (u64::MAX, u64::MAX)] {
            let b = hello_block(session, epoch);
            assert_eq!(parse_hello(&b).unwrap(), (session, epoch));
        }
        let mut bad = hello_block(1, 1);
        bad[0] = b'X';
        assert_eq!(parse_hello(&bad).unwrap_err().reason(), "frame");
    }

    #[test]
    fn decoder_handles_frames_split_at_every_boundary() {
        let records = [
            sample(Some(0.75), Relationship::PrivatePeer),
            sample(None, Relationship::Transit),
            sample(Some(0.0), Relationship::PublicPeer),
        ];
        let mut wire = Vec::new();
        for r in &records {
            wire.extend_from_slice(&encode_frame(r));
        }
        // Feed the stream one byte at a time: every possible split point.
        for chunk in [1usize, 2, 7, FRAME_WIRE_LEN - 1, FRAME_WIRE_LEN, wire.len()] {
            let mut dec = FrameDecoder::new(FRAME_BODY_LEN, 64);
            let mut out = Vec::new();
            for piece in wire.chunks(chunk) {
                feed(&mut dec, piece);
                while let Some(r) = dec.next_record().unwrap() {
                    out.push(r);
                }
            }
            assert_eq!(out.len(), records.len(), "chunk size {chunk}");
            for (a, b) in records.iter().zip(&out) {
                assert_bit_identical(a, b);
            }
            assert_eq!(dec.pending(), 0, "chunk size {chunk}");
        }
    }

    #[test]
    fn forward_compat_frames_skip_surplus_bytes() {
        let r = sample(Some(0.5), Relationship::PublicPeer);
        let base = encode_frame(&r);
        let extended_body = FRAME_BODY_LEN + 4;
        let mut wire = Vec::new();
        for _ in 0..2 {
            wire.push(extended_body as u8);
            wire.extend_from_slice(&base[1..]);
            wire.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]); // future fields
        }
        let mut dec = FrameDecoder::new(extended_body, 16);
        feed(&mut dec, &wire);
        let mut out = Vec::new();
        while let Some(rec) = dec.next_record().unwrap() {
            out.push(rec);
        }
        assert_eq!(out.len(), 2);
        for got in &out {
            assert_bit_identical(&r, got);
        }
    }

    #[test]
    fn malformed_frames_are_typed_rejects() {
        // Short length prefix.
        let mut dec = FrameDecoder::new(FRAME_BODY_LEN, 64);
        let w = dec.writable();
        w[0] = 3;
        let wlen = w.len();
        dec.advance(1, wlen);
        assert_eq!(dec.next_record().unwrap_err().reason(), "frame");

        // Length prefix disagreeing with the negotiated body length.
        let mut dec = FrameDecoder::new(FRAME_BODY_LEN, 64);
        let w = dec.writable();
        w[0] = FRAME_BODY_LEN as u8 + 1;
        let wlen = w.len();
        dec.advance(1, wlen);
        assert_eq!(dec.next_record().unwrap_err().reason(), "frame");

        // Invalid packed fields.
        let good = sample(Some(0.5), Relationship::Transit);
        let corrupt = |f: &mut [u8; FRAME_WIRE_LEN]| {
            let mut dec = FrameDecoder::new(FRAME_BODY_LEN, 64);
            let w = dec.writable();
            let wlen = w.len();
            w[..f.len()].copy_from_slice(f);
            dec.advance(f.len(), wlen);
            dec.next_record().unwrap_err()
        };

        let mut f = encode_frame(&good);
        f[1 + 43] = (f[1 + 43] & !0b11) | 0b11; // relationship code 3
        assert_eq!(corrupt(&mut f).reason(), "frame");

        let mut f = encode_frame(&good);
        f[1 + 40] = 33; // prefix length
        assert_eq!(corrupt(&mut f).reason(), "frame");

        let mut f = encode_frame(&good);
        f[1 + 43] |= 0b1000_0000; // unknown meta bit
        assert_eq!(corrupt(&mut f).reason(), "frame");

        let mut f = encode_frame(&good);
        f[1 + 8..1 + 16].copy_from_slice(&(-1.0f64).to_le_bytes());
        assert_eq!(corrupt(&mut f).reason(), "invalid_min_rtt");

        let mut f = encode_frame(&good);
        f[1 + 16..1 + 24].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(corrupt(&mut f).reason(), "non_finite");

        let mut f = encode_frame(&good);
        f[1..1 + 8].copy_from_slice(&f64::INFINITY.to_le_bytes());
        assert_eq!(corrupt(&mut f).reason(), "frame");
    }

    /// Property coverage for the decoder: arbitrary garbage, and valid
    /// streams cut at every possible boundary, chaos-style.
    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A structurally valid record derived deterministically from a
        /// seed, with enough field variety to cover every meta-bit
        /// combination and both hdratio arms.
        fn record_from_seed(seed: u64) -> LiveRecord {
            let rel = match seed % 3 {
                0 => Relationship::PrivatePeer,
                1 => Relationship::PublicPeer,
                _ => Relationship::Transit,
            };
            LiveRecord {
                ts_ms: (seed % 1_000_000) as f64 + 0.25,
                group: GroupKey {
                    pop: PopId((seed % 16) as u16),
                    prefix: Prefix::new(
                        u32::try_from((seed % 100) << 16).expect("fits in u32"),
                        (seed % 33) as u8,
                    ),
                    country: (seed % 200) as u16,
                    continent: (seed % 6) as u8,
                },
                route_rank: (seed % 3) as u8,
                relationship: rel,
                longer_path: seed % 2 == 1,
                more_prepended: seed.is_multiple_of(7),
                min_rtt_ms: 1.0 + (seed % 500) as f64 * 0.125,
                hdratio: (seed % 4 != 1).then(|| (seed % 100) as f64 / 100.0),
                bytes: seed.wrapping_mul(1_003),
            }
        }

        /// Drain the decoder; panics bubble, errors are returned.
        fn drain(dec: &mut FrameDecoder) -> Result<Vec<LiveRecord>, EdgeperfError> {
            let mut out = Vec::new();
            while let Some(r) = dec.next_record()? {
                out.push(r);
            }
            Ok(out)
        }

        proptest! {
            /// Arbitrary bytes, fed in arbitrary chunk sizes: the
            /// decoder must never panic, and every outcome must be a
            /// decoded frame or a typed reject reason — exactly the
            /// labels `ingest.reject.<reason>` can take on this path.
            #[test]
            fn arbitrary_streams_never_panic_and_errors_are_typed(
                bytes in prop::collection::vec(any::<u8>(), 0..600),
                chunk in 1usize..80,
            ) {
                let mut dec = FrameDecoder::new(FRAME_BODY_LEN, 64);
                'stream: for piece in bytes.chunks(chunk) {
                    feed(&mut dec, piece);
                    match drain(&mut dec) {
                        Ok(_) => {}
                        Err(e) => {
                            prop_assert!(
                                matches!(e.reason(), "frame" | "invalid_min_rtt" | "non_finite"),
                                "untyped reject {e}"
                            );
                            // The server closes the connection here.
                            break 'stream;
                        }
                    }
                }
            }

            /// A valid frame stream truncated mid-frame and split into
            /// two reads at an arbitrary boundary decodes exactly the
            /// complete frames — bit-identically to an unsplit read —
            /// and retains exactly the truncated tail as pending bytes.
            #[test]
            fn split_reads_decode_identically_to_whole_reads(
                seeds in prop::collection::vec(any::<u64>(), 1..8),
                cut in any::<u64>(),
                truncate in 0usize..FRAME_WIRE_LEN,
            ) {
                let records: Vec<LiveRecord> =
                    seeds.iter().map(|&s| record_from_seed(s)).collect();
                let mut wire = Vec::new();
                for r in &records {
                    wire.extend_from_slice(&encode_frame(r));
                }
                wire.truncate(wire.len() - truncate);
                let complete = wire.len() / FRAME_WIRE_LEN;
                let tail = wire.len() % FRAME_WIRE_LEN;

                // One whole read.
                let mut whole = FrameDecoder::new(FRAME_BODY_LEN, 64);
                feed(&mut whole, &wire);
                let got_whole = drain(&mut whole).expect("valid stream");

                // Two reads split at an arbitrary boundary, with the
                // decoder drained in between (state must carry over).
                let cut = usize::try_from(cut).unwrap_or(usize::MAX) % (wire.len() + 1);
                let mut split = FrameDecoder::new(FRAME_BODY_LEN, 64);
                feed(&mut split, &wire[..cut]);
                let mut got_split = drain(&mut split).expect("valid prefix");
                feed(&mut split, &wire[cut..]);
                got_split.extend(drain(&mut split).expect("valid suffix"));

                prop_assert_eq!(got_whole.len(), complete);
                prop_assert_eq!(got_split.len(), complete);
                prop_assert_eq!(whole.pending(), tail);
                prop_assert_eq!(split.pending(), tail);
                for ((a, b), want) in got_whole.iter().zip(&got_split).zip(&records) {
                    assert_bit_identical(a, b);
                    assert_bit_identical(a, want);
                }
            }
        }
    }
}
