//! The live ingest record and the pluggable wire parser.

use edgeperf_analysis::GroupKey;
use edgeperf_core::EdgeperfError;
use edgeperf_routing::Relationship;

/// One measured session arriving over the wire: a
/// [`edgeperf_analysis::SessionRecord`] plus the event timestamp the
/// window assignment is derived from (the offline pipeline assigns
/// window indices up front; the live server derives them from time).
#[derive(Debug, Clone, Copy)]
pub struct LiveRecord {
    /// Event time in milliseconds since the stream epoch.
    pub ts_ms: f64,
    /// The user group the session belongs to.
    pub group: GroupKey,
    /// Rank of the pinned egress route (0 = policy-preferred).
    pub route_rank: u8,
    /// Relationship type of the pinned route.
    pub relationship: Relationship,
    /// The pinned route's AS path is longer than the preferred route's.
    pub longer_path: bool,
    /// The pinned route is prepended more than the preferred route.
    pub more_prepended: bool,
    /// Session MinRTT in milliseconds.
    pub min_rtt_ms: f64,
    /// Session HDratio, if any transaction could test for HD goodput.
    pub hdratio: Option<f64>,
    /// Response bytes carried (the session's traffic weight).
    pub bytes: u64,
}

/// Parses one wire line into a [`LiveRecord`].
///
/// The server is generic over the wire format so the crate graph stays
/// acyclic: the umbrella `edgeperf` crate implements this trait on top of
/// its `ingest` module (typed-error JSONL parsing + the core estimator)
/// and injects it into [`crate::LiveServer`].
pub trait LineParser: Send + Sync + 'static {
    /// Parse a line; errors are counted under `ingest.reject.<reason>`.
    fn parse(&self, line: &str) -> Result<LiveRecord, EdgeperfError>;
}

impl<F> LineParser for F
where
    F: Fn(&str) -> Result<LiveRecord, EdgeperfError> + Send + Sync + 'static,
{
    fn parse(&self, line: &str) -> Result<LiveRecord, EdgeperfError> {
        self(line)
    }
}

/// Parse a relationship label as produced by [`Relationship::label`].
pub fn relationship_from_label(s: &str) -> Result<Relationship, EdgeperfError> {
    match s {
        "private" => Ok(Relationship::PrivatePeer),
        "public" => Ok(Relationship::PublicPeer),
        "transit" => Ok(Relationship::Transit),
        other => Err(EdgeperfError::Json { message: format!("unknown relationship `{other}`") }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relationship_labels_round_trip() {
        for rel in [Relationship::PrivatePeer, Relationship::PublicPeer, Relationship::Transit] {
            assert_eq!(relationship_from_label(rel.label()).unwrap(), rel);
        }
        assert!(relationship_from_label("imaginary").is_err());
    }

    #[test]
    fn closures_are_parsers() {
        let parser = |_: &str| Err(EdgeperfError::UnknownDuration);
        assert!(LineParser::parse(&parser, "x").is_err());
    }
}
