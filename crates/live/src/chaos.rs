//! Deterministic chaos injection for the live tier.
//!
//! [`ChaosPlan`] is the network-tier sibling of the offline
//! supervisor's `FaultPlan` (`edgeperf_world::supervisor`): a seeded,
//! fully deterministic schedule of faults parsed from a compact spec
//! string, so a chaos run is exactly reproducible and CI can assert on
//! its outcome. The same grammar describes faults on both sides of the
//! wire; each side applies only the clauses that concern it:
//!
//! - **client side** (loadgen `--chaos`, [`WireChaos`]): `disconnect`
//!   (drop the data connection at a record boundary), `torn` (send a
//!   partial frame/line — a mid-frame disconnect — then drop), `stall`
//!   (slow-loris pause before a record, long enough to trip the
//!   server's idle eviction when one is configured).
//! - **server side** (`ServeBuilder::chaos`, `serve --chaos`): `panic`
//!   (a worker thread panics at a batch boundary, exercising
//!   catch_unwind recovery), `spillfail`/`compactfail` (ENOSPC/EIO-
//!   style errors injected into the tiered store's disk operations,
//!   exercising degraded mode), `spilldelay` (a delayed segment
//!   write).
//!
//! Record and op indices are 0-based positions in a deterministic
//! sequence (the client's send order; the store's spill/compaction op
//! order), so a clause fires at the same logical point on every run.
//! `seed` feeds the client's backoff jitter (`client::RetryPolicy`);
//! everything else is schedule-driven and needs no randomness at all.

use std::fmt;
use std::time::Duration;

/// One client-side stall: pause before sending record `record`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosStall {
    /// 0-based global record index the pause precedes.
    pub record: u64,
    /// Pause length in milliseconds.
    pub millis: u64,
}

/// One injected worker panic: worker `worker` panics at the first batch
/// boundary after `after_records` records have been applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Worker index (the shard the panic lands on).
    pub worker: usize,
    /// Applied-record threshold that arms the panic.
    pub after_records: u64,
}

/// A run of injected failures on a disk-operation sequence: ops
/// `op .. op + count` fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpFault {
    /// 0-based index of the first failing operation.
    pub op: u64,
    /// Consecutive operations that fail (`K@A` spec; default 1).
    pub count: u64,
}

impl OpFault {
    fn covers(&self, op: u64) -> bool {
        op >= self.op && op < self.op.saturating_add(self.count)
    }
}

/// One delayed disk operation: op `op` sleeps `millis` before running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpDelay {
    /// 0-based index of the delayed operation.
    pub op: u64,
    /// Delay in milliseconds.
    pub millis: u64,
}

/// A deterministic chaos schedule for the live tier (see module docs).
///
/// Parsed from a `;`-separated spec, e.g.
/// `disconnect:500;torn:1200;stall:2000@1500;panic:0@800;spillfail:0@3;seed:7`.
/// [`fmt::Display`] renders the canonical form, which re-parses to an
/// equal plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPlan {
    /// Client: close the data connection after sending these records.
    pub disconnects: Vec<u64>,
    /// Client: send a partial payload for these records, then close
    /// (a mid-frame disconnect).
    pub torn: Vec<u64>,
    /// Client: slow-loris pauses.
    pub stalls: Vec<ChaosStall>,
    /// Server: injected worker panics.
    pub worker_panics: Vec<WorkerPanic>,
    /// Store: spill ops that fail (injected ENOSPC).
    pub spill_failures: Vec<OpFault>,
    /// Store: compaction ops that fail (injected EIO).
    pub compact_failures: Vec<OpFault>,
    /// Store: delayed spill writes.
    pub spill_delays: Vec<OpDelay>,
    /// Jitter seed for client backoff (`seed:S`).
    pub seed: Option<u64>,
}

/// A malformed chaos spec (unknown clause kind or bad numbers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlanError(pub String);

impl fmt::Display for ChaosPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid chaos plan: {}", self.0)
    }
}

impl std::error::Error for ChaosPlanError {}

fn parse_u64(s: &str, clause: &str) -> Result<u64, ChaosPlanError> {
    s.trim().parse().map_err(|_| ChaosPlanError(format!("bad number in `{clause}`")))
}

/// Parse `A@B` with a default `B` when the `@` part is absent.
fn parse_pair(body: &str, clause: &str, default_second: u64) -> Result<(u64, u64), ChaosPlanError> {
    match body.split_once('@') {
        Some((a, b)) => Ok((parse_u64(a, clause)?, parse_u64(b, clause)?)),
        None => Ok((parse_u64(body, clause)?, default_second)),
    }
}

impl ChaosPlan {
    /// Parse a spec string. Empty (or all-whitespace) spec = empty plan.
    pub fn parse(spec: &str) -> Result<ChaosPlan, ChaosPlanError> {
        let mut plan = ChaosPlan::default();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (kind, body) = clause
                .split_once(':')
                .ok_or_else(|| ChaosPlanError(format!("clause `{clause}` has no `:`")))?;
            match kind.trim() {
                "disconnect" => plan.disconnects.push(parse_u64(body, clause)?),
                "torn" => plan.torn.push(parse_u64(body, clause)?),
                "stall" => {
                    let (record, millis) = parse_pair(body, clause, 0)?;
                    if millis == 0 {
                        return Err(ChaosPlanError(format!("`{clause}` needs `record@millis`")));
                    }
                    plan.stalls.push(ChaosStall { record, millis });
                }
                "panic" => {
                    let (worker, after) = parse_pair(body, clause, 0)?;
                    plan.worker_panics
                        .push(WorkerPanic { worker: worker as usize, after_records: after });
                }
                "spillfail" => {
                    let (op, count) = parse_pair(body, clause, 1)?;
                    plan.spill_failures.push(OpFault { op, count: count.max(1) });
                }
                "compactfail" => {
                    let (op, count) = parse_pair(body, clause, 1)?;
                    plan.compact_failures.push(OpFault { op, count: count.max(1) });
                }
                "spilldelay" => {
                    let (op, millis) = parse_pair(body, clause, 0)?;
                    if millis == 0 {
                        return Err(ChaosPlanError(format!("`{clause}` needs `op@millis`")));
                    }
                    plan.spill_delays.push(OpDelay { op, millis });
                }
                "seed" => plan.seed = Some(parse_u64(body, clause)?),
                other => return Err(ChaosPlanError(format!("unknown clause kind `{other}`"))),
            }
        }
        Ok(plan)
    }

    /// Plan from the `EDGEPERF_CHAOS` environment variable (empty plan
    /// when unset; a malformed value is an error, not silence).
    pub fn from_env() -> Result<ChaosPlan, ChaosPlanError> {
        match std::env::var("EDGEPERF_CHAOS") {
            Ok(spec) => ChaosPlan::parse(&spec),
            Err(_) => Ok(ChaosPlan::default()),
        }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == ChaosPlan::default()
    }

    /// True when any clause targets the client side of the wire.
    pub fn has_wire_faults(&self) -> bool {
        !(self.disconnects.is_empty() && self.torn.is_empty() && self.stalls.is_empty())
    }

    /// Applied-record panic thresholds armed for `worker`, ascending.
    pub fn panics_for(&self, worker: usize) -> Vec<u64> {
        let mut thresholds: Vec<u64> = self
            .worker_panics
            .iter()
            .filter(|p| p.worker == worker)
            .map(|p| p.after_records)
            .collect();
        thresholds.sort_unstable();
        thresholds
    }

    /// Does spill op `op` (0-based) fail?
    pub fn spill_fails(&self, op: u64) -> bool {
        self.spill_failures.iter().any(|f| f.covers(op))
    }

    /// Does compaction op `op` (0-based) fail?
    pub fn compact_fails(&self, op: u64) -> bool {
        self.compact_failures.iter().any(|f| f.covers(op))
    }

    /// Injected delay before spill op `op`, if any.
    pub fn spill_delay(&self, op: u64) -> Option<Duration> {
        self.spill_delays.iter().find(|d| d.op == op).map(|d| Duration::from_millis(d.millis))
    }
}

impl fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut clauses: Vec<String> = Vec::new();
        clauses.extend(self.disconnects.iter().map(|r| format!("disconnect:{r}")));
        clauses.extend(self.torn.iter().map(|r| format!("torn:{r}")));
        clauses.extend(self.stalls.iter().map(|s| format!("stall:{}@{}", s.record, s.millis)));
        clauses.extend(
            self.worker_panics.iter().map(|p| format!("panic:{}@{}", p.worker, p.after_records)),
        );
        clauses
            .extend(self.spill_failures.iter().map(|o| format!("spillfail:{}@{}", o.op, o.count)));
        clauses.extend(
            self.compact_failures.iter().map(|o| format!("compactfail:{}@{}", o.op, o.count)),
        );
        clauses
            .extend(self.spill_delays.iter().map(|d| format!("spilldelay:{}@{}", d.op, d.millis)));
        if let Some(seed) = self.seed {
            clauses.push(format!("seed:{seed}"));
        }
        write!(f, "{}", clauses.join(";"))
    }
}

/// What a client-side chaos event does to the in-flight send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Close the connection at this record boundary, before sending it.
    Disconnect,
    /// Send a partial payload for this record, then close (mid-frame).
    Torn,
    /// Pause this long before sending the record, then continue.
    Stall(Duration),
}

/// Per-connection applier of the plan's client-side clauses.
///
/// Each clause fires exactly once per applier, even when a resume
/// restarts the send below the clause's record index (the fired flag
/// persists across reconnects — otherwise a `disconnect:100` would
/// re-fire on every pass over record 100 and the replay would never
/// finish).
#[derive(Debug)]
pub struct WireChaos {
    events: Vec<(u64, WireFault, bool)>,
}

impl WireChaos {
    /// Applier over `plan`'s wire clauses.
    pub fn new(plan: &ChaosPlan) -> WireChaos {
        let mut events: Vec<(u64, WireFault, bool)> = Vec::new();
        events.extend(plan.disconnects.iter().map(|&r| (r, WireFault::Disconnect, false)));
        events.extend(plan.torn.iter().map(|&r| (r, WireFault::Torn, false)));
        events.extend(
            plan.stalls
                .iter()
                .map(|s| (s.record, WireFault::Stall(Duration::from_millis(s.millis)), false)),
        );
        events.sort_by_key(|(r, _, _)| *r);
        WireChaos { events }
    }

    /// The fault to apply before sending record `index`, if any.
    /// Marks the returned event fired. At most one event fires per
    /// call; a disconnect and a stall armed at the same index fire on
    /// consecutive attempts to send it.
    pub fn before_record(&mut self, index: u64) -> Option<WireFault> {
        for (record, fault, fired) in self.events.iter_mut() {
            if !*fired && *record <= index {
                *fired = true;
                return Some(*fault);
            }
        }
        None
    }

    /// Events that have not fired yet (reported by the chaos run so a
    /// plan that outlives the replay is visible, not silent).
    pub fn unfired(&self) -> usize {
        self.events.iter().filter(|(_, _, fired)| !fired).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_specs_parse_to_the_empty_plan() {
        for spec in ["", "   ", ";;", " ; ; "] {
            let plan = ChaosPlan::parse(spec).expect("empty spec parses");
            assert!(plan.is_empty(), "{spec:?} -> {plan:?}");
            assert!(!plan.has_wire_faults());
        }
    }

    #[test]
    fn full_spec_round_trips_through_display() {
        let spec = "disconnect:500;torn:1200;stall:2000@1500;panic:0@800;panic:2@100;\
                    spillfail:0@3;compactfail:1@1;spilldelay:4@50;seed:7";
        let plan = ChaosPlan::parse(spec).expect("spec parses");
        assert_eq!(plan.disconnects, vec![500]);
        assert_eq!(plan.torn, vec![1200]);
        assert_eq!(plan.stalls, vec![ChaosStall { record: 2000, millis: 1500 }]);
        assert_eq!(plan.worker_panics.len(), 2);
        assert_eq!(plan.seed, Some(7));
        let canonical = plan.to_string();
        let reparsed = ChaosPlan::parse(&canonical).expect("canonical form reparses");
        assert_eq!(plan, reparsed, "display must round-trip: {canonical}");
    }

    #[test]
    fn defaults_fill_in_for_single_number_clauses() {
        let plan = ChaosPlan::parse("spillfail:3;panic:1").expect("defaults parse");
        assert_eq!(plan.spill_failures, vec![OpFault { op: 3, count: 1 }]);
        assert_eq!(plan.worker_panics, vec![WorkerPanic { worker: 1, after_records: 0 }]);
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for spec in
            ["bogus:1", "disconnect", "disconnect:x", "stall:5", "spilldelay:1@0", "panic:a@b"]
        {
            let err = ChaosPlan::parse(spec).expect_err(spec);
            assert!(err.to_string().starts_with("invalid chaos plan: "), "{err}");
        }
    }

    #[test]
    fn op_fault_windows_cover_exactly_their_run() {
        let plan = ChaosPlan::parse("spillfail:2@3").expect("parses");
        let fails: Vec<bool> = (0..7).map(|op| plan.spill_fails(op)).collect();
        assert_eq!(fails, vec![false, false, true, true, true, false, false]);
        assert!(!plan.compact_fails(2));
        assert_eq!(plan.spill_delay(2), None);
    }

    #[test]
    fn panics_for_filters_and_sorts_per_worker() {
        let plan = ChaosPlan::parse("panic:1@500;panic:0@900;panic:1@100").expect("parses");
        assert_eq!(plan.panics_for(1), vec![100, 500]);
        assert_eq!(plan.panics_for(0), vec![900]);
        assert_eq!(plan.panics_for(3), Vec::<u64>::new());
    }

    #[test]
    fn wire_chaos_fires_each_event_once_even_after_resume() {
        let plan = ChaosPlan::parse("disconnect:10;stall:10@250;torn:20").expect("parses");
        let mut wire = WireChaos::new(&plan);
        assert_eq!(wire.before_record(5), None);
        // Both events armed at 10 fire on consecutive attempts, in
        // record order (disconnect sorts first only by stable order of
        // insertion at equal keys — any one-at-a-time order is fine).
        let first = wire.before_record(10).expect("first event at 10");
        let second = wire.before_record(10).expect("second event at 10");
        assert_ne!(first, second);
        assert_eq!(wire.before_record(10), None, "events at 10 are spent");
        // A resume that restarts below 20 does not re-fire anything
        // until the replay reaches the torn record.
        assert_eq!(wire.before_record(15), None);
        assert_eq!(wire.before_record(25), Some(WireFault::Torn), "torn fires past 20");
        assert_eq!(wire.unfired(), 0);
    }

    #[test]
    fn from_env_reads_and_validates_the_variable() {
        // No variable set in the test environment: empty plan.
        assert!(ChaosPlan::from_env().expect("unset env is empty plan").is_empty());
    }
}
