//! Live-server tunables.

use edgeperf_analysis::AnalysisConfig;
use edgeperf_core::EdgeperfError;

/// Configuration of a [`crate::LiveServer`].
///
/// Defaults target the paper's parameters (15-minute windows, §3.3) with
/// an allowed lateness of one minute; tests shrink both to keep replays
/// fast.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Number of ingest worker threads (each owns a shard of the groups).
    pub workers: usize,
    /// Aggregation window length in milliseconds (15 minutes).
    pub window_ms: f64,
    /// Allowed event-time lateness: the watermark trails the maximum
    /// observed timestamp by this much, and a window closes only when the
    /// watermark passes its end.
    pub lateness_ms: f64,
    /// Bounded per-lane queue capacity (records). Each connection owns
    /// one SPSC lane per worker sized to hold about this many records
    /// (rounded to whole batches, then to a power of two of ring
    /// slots); a reader blocks when a lane is full — backpressure
    /// instead of unbounded memory.
    pub queue_capacity: usize,
    /// Closed windows retained for queries and baselines, per worker.
    /// Older windows are evicted; memory stays bounded by
    /// `groups × retention_windows` cells.
    pub retention_windows: usize,
    /// Statistical parameters shared with the offline pipeline.
    pub analysis: AnalysisConfig,
    /// MinRTT degradation threshold (ms): an event needs the CI lower
    /// bound of (window − baseline) to clear this.
    pub minrtt_threshold_ms: f64,
    /// HDratio degradation threshold (ratio units, baseline − window).
    pub hdratio_threshold: f64,
    /// Watchdog deadline: a worker stuck on one message longer than this
    /// many milliseconds is flagged `live.workers.slow`.
    pub slow_worker_ms: u64,
    /// Per-connection read buffer size in bytes: the `BufReader`
    /// capacity in JSONL mode and the reusable [`crate::FrameDecoder`]
    /// buffer in binary mode. One allocation per connection, reused for
    /// every record.
    pub read_buffer_bytes: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            window_ms: 900_000.0,
            lateness_ms: 60_000.0,
            queue_capacity: 4_096,
            retention_windows: 192,
            analysis: AnalysisConfig::default(),
            minrtt_threshold_ms: 5.0,
            hdratio_threshold: 0.05,
            slow_worker_ms: 5_000,
            read_buffer_bytes: 1 << 16,
        }
    }
}

impl LiveConfig {
    /// Reject configurations the server cannot run with.
    pub fn validate(&self) -> Result<(), EdgeperfError> {
        fn bad(field: &'static str, message: String) -> Result<(), EdgeperfError> {
            Err(EdgeperfError::InvalidConfig { field, message })
        }
        if self.workers == 0 {
            return bad("workers", "must be positive, got 0".to_string());
        }
        // NaN fails both checks: `is_nan` is spelled out so the negated
        // float comparisons don't hide it.
        if self.window_ms.is_nan() || self.window_ms <= 0.0 {
            return bad("window_ms", format!("must be positive, got {}", self.window_ms));
        }
        if self.lateness_ms.is_nan() || self.lateness_ms < 0.0 {
            return bad("lateness_ms", format!("must be non-negative, got {}", self.lateness_ms));
        }
        if self.queue_capacity == 0 {
            return bad("queue_capacity", "must be positive, got 0".to_string());
        }
        if self.retention_windows == 0 {
            return bad("retention_windows", "must be positive, got 0".to_string());
        }
        if self.read_buffer_bytes == 0 {
            return bad("read_buffer_bytes", "must be positive, got 0".to_string());
        }
        self.analysis.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_match_paper_window() {
        let c = LiveConfig::default();
        c.validate().expect("defaults are valid");
        assert_eq!(c.window_ms, 15.0 * 60.0 * 1000.0);
        assert_eq!(c.analysis.min_samples, 30);
    }

    #[test]
    fn bad_parameters_are_rejected_with_field_context() {
        type Case = (fn(&mut LiveConfig), &'static str);
        let cases: Vec<Case> = vec![
            (|c| c.workers = 0, "workers"),
            (|c| c.window_ms = 0.0, "window_ms"),
            (|c| c.window_ms = f64::NAN, "window_ms"),
            (|c| c.lateness_ms = -1.0, "lateness_ms"),
            (|c| c.queue_capacity = 0, "queue_capacity"),
            (|c| c.retention_windows = 0, "retention_windows"),
            (|c| c.read_buffer_bytes = 0, "read_buffer_bytes"),
        ];
        for (mutate, field) in cases {
            let mut c = LiveConfig::default();
            mutate(&mut c);
            match c.validate().expect_err(field) {
                EdgeperfError::InvalidConfig { field: f, .. } => assert_eq!(f, field),
                other => panic!("unexpected error for {field}: {other}"),
            }
        }
    }
}
