//! Live-server tunables and the one sanctioned construction path.

use crate::record::LineParser;
use crate::server::{LiveServer, ServerHandle};
use edgeperf_analysis::AnalysisConfig;
use edgeperf_core::EdgeperfError;
use edgeperf_obs::Metrics;
use std::path::PathBuf;
use std::sync::Arc;

/// Configuration of a [`crate::LiveServer`].
///
/// Defaults target the paper's parameters (15-minute windows, §3.3) with
/// an allowed lateness of one minute; tests shrink both to keep replays
/// fast. Prefer building through [`ServeBuilder`] — struct literals
/// scattered over callers is how config fields get missed when one is
/// added.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Number of ingest worker threads (each owns a shard of the groups).
    pub workers: usize,
    /// Aggregation window length in milliseconds (15 minutes).
    pub window_ms: f64,
    /// Allowed event-time lateness: the watermark trails the maximum
    /// observed timestamp by this much, and a window closes only when the
    /// watermark passes its end.
    pub lateness_ms: f64,
    /// Bounded per-lane queue capacity (records). Each connection owns
    /// one SPSC lane per worker sized to hold about this many records
    /// (rounded to whole batches, then to a power of two of ring
    /// slots); a reader blocks when a lane is full — backpressure
    /// instead of unbounded memory.
    pub queue_capacity: usize,
    /// Closed windows retained in RAM for queries and baselines, per
    /// worker. Older windows are evicted — into the tiered segment
    /// store when [`spill_dir`](Self::spill_dir) is set, otherwise
    /// dropped — so RAM stays bounded by
    /// `groups × retention_windows` cells either way.
    pub retention_windows: usize,
    /// Directory for the tiered window store. `None` (the default)
    /// keeps the pre-spill behaviour: evicted windows are gone. With a
    /// directory, evicted windows are written as columnar segments and
    /// stay queryable through `cells from=… until=…`.
    pub spill_dir: Option<PathBuf>,
    /// Segment count at which the background compactor starts merging
    /// (only meaningful with a spill directory).
    pub compact_min_segments: usize,
    /// Segments merged per compaction round.
    pub compact_batch: usize,
    /// Statistical parameters shared with the offline pipeline.
    pub analysis: AnalysisConfig,
    /// MinRTT degradation threshold (ms): an event needs the CI lower
    /// bound of (window − baseline) to clear this.
    pub minrtt_threshold_ms: f64,
    /// HDratio degradation threshold (ratio units, baseline − window).
    pub hdratio_threshold: f64,
    /// Watchdog deadline: a worker stuck on one message longer than this
    /// many milliseconds is flagged `live.workers.slow`.
    pub slow_worker_ms: u64,
    /// Per-connection read buffer size in bytes: the `BufReader`
    /// capacity in JSONL mode and the reusable [`crate::FrameDecoder`]
    /// buffer in binary mode. One allocation per connection, reused for
    /// every record.
    pub read_buffer_bytes: usize,
    /// Idle/read deadline per connection in milliseconds. A connection
    /// that produces no bytes for this long is evicted (counted under
    /// `live.conns.evicted`); clients with resume sessions reconnect
    /// and continue. `0` (the default) disables the deadline.
    pub idle_timeout_ms: u64,
    /// Write deadline per connection in milliseconds: a reply write
    /// blocked longer than this (slow-loris reader) evicts the
    /// connection. `0` (the default) disables the deadline.
    pub write_timeout_ms: u64,
    /// Maximum simultaneous client connections. New connections beyond
    /// the cap are refused (counted under `live.conns.refused`).
    /// `0` (the default) means unlimited.
    pub max_connections: usize,
    /// Times a panicked ingest worker is respawned before its shard
    /// goes into zombie mode (records drained and counted as rejected
    /// with reason `worker_lost`, queries keep answering).
    pub max_worker_respawns: u32,
    /// Consecutive spill failures before the segment store enters
    /// degraded (RAM-only retention) mode.
    pub spill_fail_threshold: u32,
    /// Deterministic fault-injection schedule (empty in production;
    /// see [`crate::ChaosPlan`]).
    pub chaos: crate::ChaosPlan,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            window_ms: 900_000.0,
            lateness_ms: 60_000.0,
            queue_capacity: 4_096,
            retention_windows: 192,
            spill_dir: None,
            compact_min_segments: 16,
            compact_batch: 8,
            analysis: AnalysisConfig::default(),
            minrtt_threshold_ms: 5.0,
            hdratio_threshold: 0.05,
            slow_worker_ms: 5_000,
            read_buffer_bytes: 1 << 16,
            idle_timeout_ms: 0,
            write_timeout_ms: 0,
            max_connections: 0,
            max_worker_respawns: 8,
            spill_fail_threshold: 3,
            chaos: crate::ChaosPlan::default(),
        }
    }
}

impl LiveConfig {
    /// Reject configurations the server cannot run with.
    pub fn validate(&self) -> Result<(), EdgeperfError> {
        fn bad(field: &'static str, message: String) -> Result<(), EdgeperfError> {
            Err(EdgeperfError::InvalidConfig { field, message })
        }
        if self.workers == 0 {
            return bad("workers", "must be positive, got 0".to_string());
        }
        // NaN fails both checks: `is_nan` is spelled out so the negated
        // float comparisons don't hide it.
        if self.window_ms.is_nan() || self.window_ms <= 0.0 {
            return bad("window_ms", format!("must be positive, got {}", self.window_ms));
        }
        if self.lateness_ms.is_nan() || self.lateness_ms < 0.0 {
            return bad("lateness_ms", format!("must be non-negative, got {}", self.lateness_ms));
        }
        if self.queue_capacity == 0 {
            return bad("queue_capacity", "must be positive, got 0".to_string());
        }
        if self.retention_windows == 0 {
            return bad("retention_windows", "must be positive, got 0".to_string());
        }
        if self.read_buffer_bytes == 0 {
            return bad("read_buffer_bytes", "must be positive, got 0".to_string());
        }
        if self.spill_dir.as_ref().is_some_and(|d| d.as_os_str().is_empty()) {
            return bad("spill_dir", "must not be an empty path".to_string());
        }
        if self.compact_min_segments < 2 {
            return bad(
                "compact_min_segments",
                format!("must be at least 2, got {}", self.compact_min_segments),
            );
        }
        if self.compact_batch < 2 {
            return bad("compact_batch", format!("must be at least 2, got {}", self.compact_batch));
        }
        if self.spill_fail_threshold == 0 {
            return bad("spill_fail_threshold", "must be positive, got 0".to_string());
        }
        self.analysis.validate()
    }
}

/// The one construction path for a live server, mirroring
/// [`StudyBuilder`] on the offline side: defaults first, consuming-self
/// setters for what differs, then [`start`](ServeBuilder::start).
///
/// The CLI's `edgeperf serve`, the load generator's self-hosted suite
/// servers and the live tests all build through here, so adding a config
/// field means extending one builder instead of chasing struct literals
/// across three crates.
///
/// ```no_run
/// # use edgeperf_live::{ServeBuilder, LineParser, LiveRecord};
/// # use edgeperf_core::EdgeperfError;
/// # use std::sync::Arc;
/// # struct P;
/// # impl LineParser for P {
/// #     fn parse(&self, _: &str) -> Result<LiveRecord, EdgeperfError> { unimplemented!() }
/// # }
/// let handle = ServeBuilder::new()
///     .addr("127.0.0.1:0")
///     .workers(4)
///     .retention_windows(96)
///     .spill_dir("/tmp/edgeperf-spill")
///     .start(Arc::new(P))?;
/// # Ok::<(), EdgeperfError>(())
/// ```
///
/// [`StudyBuilder`]: https://docs.rs/edgeperf-bench
#[derive(Debug, Clone, Default)]
pub struct ServeBuilder {
    config: LiveConfig,
    metrics: Option<Metrics>,
}

impl ServeBuilder {
    /// Start from [`LiveConfig::default`] (paper windowing, 4 workers,
    /// ephemeral localhost bind, no spilling, disabled metrics).
    pub fn new() -> Self {
        Self::default()
    }

    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Ingest worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Aggregation window length (ms).
    pub fn window_ms(mut self, window_ms: f64) -> Self {
        self.config.window_ms = window_ms;
        self
    }

    /// Allowed event-time lateness (ms).
    pub fn lateness_ms(mut self, lateness_ms: f64) -> Self {
        self.config.lateness_ms = lateness_ms;
        self
    }

    /// Bounded per-lane queue capacity (records).
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.config.queue_capacity = queue_capacity;
        self
    }

    /// Closed windows retained in RAM per worker.
    pub fn retention_windows(mut self, retention_windows: usize) -> Self {
        self.config.retention_windows = retention_windows;
        self
    }

    /// Spill evicted windows into the tiered segment store at `dir`.
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.spill_dir = Some(dir.into());
        self
    }

    /// Segment count that triggers background compaction.
    pub fn compact_min_segments(mut self, segments: usize) -> Self {
        self.config.compact_min_segments = segments;
        self
    }

    /// Segments merged per compaction round.
    pub fn compact_batch(mut self, batch: usize) -> Self {
        self.config.compact_batch = batch;
        self
    }

    /// Statistical parameters shared with the offline pipeline.
    pub fn analysis(mut self, analysis: AnalysisConfig) -> Self {
        self.config.analysis = analysis;
        self
    }

    /// MinRTT degradation threshold (ms).
    pub fn minrtt_threshold_ms(mut self, threshold: f64) -> Self {
        self.config.minrtt_threshold_ms = threshold;
        self
    }

    /// HDratio degradation threshold.
    pub fn hdratio_threshold(mut self, threshold: f64) -> Self {
        self.config.hdratio_threshold = threshold;
        self
    }

    /// Watchdog deadline for slow workers (ms).
    pub fn slow_worker_ms(mut self, deadline_ms: u64) -> Self {
        self.config.slow_worker_ms = deadline_ms;
        self
    }

    /// Per-connection read buffer size (bytes).
    pub fn read_buffer_bytes(mut self, bytes: usize) -> Self {
        self.config.read_buffer_bytes = bytes;
        self
    }

    /// Idle/read deadline per connection (ms; 0 disables).
    pub fn idle_timeout_ms(mut self, ms: u64) -> Self {
        self.config.idle_timeout_ms = ms;
        self
    }

    /// Write deadline per connection (ms; 0 disables).
    pub fn write_timeout_ms(mut self, ms: u64) -> Self {
        self.config.write_timeout_ms = ms;
        self
    }

    /// Maximum simultaneous client connections (0 = unlimited).
    pub fn max_connections(mut self, cap: usize) -> Self {
        self.config.max_connections = cap;
        self
    }

    /// Worker respawn budget before a shard goes zombie.
    pub fn max_worker_respawns(mut self, budget: u32) -> Self {
        self.config.max_worker_respawns = budget;
        self
    }

    /// Consecutive spill failures before store degraded mode.
    pub fn spill_fail_threshold(mut self, threshold: u32) -> Self {
        self.config.spill_fail_threshold = threshold;
        self
    }

    /// Deterministic fault-injection schedule.
    pub fn chaos(mut self, plan: crate::ChaosPlan) -> Self {
        self.config.chaos = plan;
        self
    }

    /// Metrics handle the pipeline records into (default: disabled).
    pub fn metrics(mut self, metrics: &Metrics) -> Self {
        self.metrics = Some(metrics.clone());
        self
    }

    /// The assembled configuration (not yet validated) — for callers
    /// that need to inspect or persist it before starting.
    pub fn config(&self) -> &LiveConfig {
        &self.config
    }

    /// Validate, bind and start every server thread, with `parser`
    /// supplying the line wire format.
    pub fn start(self, parser: Arc<dyn LineParser>) -> Result<ServerHandle, EdgeperfError> {
        let metrics = self.metrics.unwrap_or_else(Metrics::disabled);
        LiveServer::start(self.config, parser, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_match_paper_window() {
        let c = LiveConfig::default();
        c.validate().expect("defaults are valid");
        assert_eq!(c.window_ms, 15.0 * 60.0 * 1000.0);
        assert_eq!(c.analysis.min_samples, 30);
        assert!(c.spill_dir.is_none(), "spilling is opt-in");
        assert!(c.chaos.is_empty(), "fault injection is opt-in");
        assert_eq!(c.idle_timeout_ms, 0, "deadlines are opt-in");
        assert_eq!(c.max_connections, 0, "connection cap is opt-in");
    }

    #[test]
    fn bad_parameters_are_rejected_with_field_context() {
        type Case = (fn(&mut LiveConfig), &'static str);
        let cases: Vec<Case> = vec![
            (|c| c.workers = 0, "workers"),
            (|c| c.window_ms = 0.0, "window_ms"),
            (|c| c.window_ms = f64::NAN, "window_ms"),
            (|c| c.lateness_ms = -1.0, "lateness_ms"),
            (|c| c.queue_capacity = 0, "queue_capacity"),
            (|c| c.retention_windows = 0, "retention_windows"),
            (|c| c.read_buffer_bytes = 0, "read_buffer_bytes"),
            (|c| c.spill_dir = Some(PathBuf::new()), "spill_dir"),
            (|c| c.compact_min_segments = 1, "compact_min_segments"),
            (|c| c.compact_batch = 0, "compact_batch"),
            (|c| c.spill_fail_threshold = 0, "spill_fail_threshold"),
        ];
        for (mutate, field) in cases {
            let mut c = LiveConfig::default();
            mutate(&mut c);
            match c.validate().expect_err(field) {
                EdgeperfError::InvalidConfig { field: f, .. } => assert_eq!(f, field),
                other => panic!("unexpected error for {field}: {other}"),
            }
        }
    }

    #[test]
    fn builder_covers_every_field() {
        let analysis = AnalysisConfig::default();
        let b = ServeBuilder::new()
            .addr("127.0.0.1:7")
            .workers(9)
            .window_ms(1_000.0)
            .lateness_ms(50.0)
            .queue_capacity(128)
            .retention_windows(3)
            .spill_dir("/tmp/x")
            .compact_min_segments(5)
            .compact_batch(3)
            .analysis(analysis)
            .minrtt_threshold_ms(7.0)
            .hdratio_threshold(0.1)
            .slow_worker_ms(123)
            .read_buffer_bytes(4_096)
            .idle_timeout_ms(2_000)
            .write_timeout_ms(1_500)
            .max_connections(64)
            .max_worker_respawns(2)
            .spill_fail_threshold(5)
            .chaos(crate::ChaosPlan::parse("disconnect:10;seed:7").expect("plan"));
        let c = b.config();
        assert_eq!(c.addr, "127.0.0.1:7");
        assert_eq!(c.workers, 9);
        assert_eq!(c.window_ms, 1_000.0);
        assert_eq!(c.lateness_ms, 50.0);
        assert_eq!(c.queue_capacity, 128);
        assert_eq!(c.retention_windows, 3);
        assert_eq!(c.spill_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(c.compact_min_segments, 5);
        assert_eq!(c.compact_batch, 3);
        assert_eq!(c.minrtt_threshold_ms, 7.0);
        assert_eq!(c.hdratio_threshold, 0.1);
        assert_eq!(c.slow_worker_ms, 123);
        assert_eq!(c.read_buffer_bytes, 4_096);
        assert_eq!(c.idle_timeout_ms, 2_000);
        assert_eq!(c.write_timeout_ms, 1_500);
        assert_eq!(c.max_connections, 64);
        assert_eq!(c.max_worker_respawns, 2);
        assert_eq!(c.spill_fail_threshold, 5);
        assert_eq!(c.chaos.to_string(), "disconnect:10;seed:7");
        c.validate().expect("builder output validates");
    }
}
