//! The typed, versioned line protocol: one parse/render path shared by
//! the server and the client.
//!
//! PR-5's dispatch matched raw command strings inline in the reader loop
//! and the client re-parsed replies by hand — two copies of the wire
//! format that could (and nearly did) drift. This module owns both
//! directions instead: [`Request::parse`] is the only place command
//! lines are interpreted, [`Request::wire_line`] is the only place they
//! are produced, and [`Response::render`] is the only place replies are
//! formatted. The server and [`crate::client::LiveClient`] both call
//! into here, so a format change is one edit and the golden tests below
//! pin the bytes.
//!
//! ## Compatibility
//!
//! Protocol version [`PROTOCOL_VERSION`] = 1 is the PR-5 line protocol,
//! extended compatibly:
//!
//! - Every legacy bare command (`ping`, `snapshot`, `stats`, `cells`,
//!   `metrics`, `shutdown`, `quit`) parses and renders **byte-identical**
//!   replies — proven by `golden_*` tests against literal strings.
//! - `cells` now accepts optional `key=value` arguments selecting a
//!   window range and/or group: `cells from=120 until=240 pop=3
//!   prefix=167772160/24 country=7 continent=2`. A bare `cells` is the
//!   full unbounded query, exactly as before.
//! - New commands: `version` reports the protocol version; `store`
//!   reports tiered-store statistics ([`crate::store::StoreStats`],
//!   which now includes `spill_errors` and `degraded` spill health).
//! - Resume protocol (DESIGN.md §15): `hello SESSION EPOCH` declares a
//!   resumable ingest session before records flow; the server replies
//!   `{"acked":N}` with the cumulative count of records it has durably
//!   consumed for that session, and the client replays from record N.
//!   `resume SESSION` reads the same counter without opening an ingest
//!   epoch (used for the final ack check). Unknown sessions ack 0.
//! - Anything else — including a legacy command trailed by arguments it
//!   does not take — is [`ProtocolError::UnknownCommand`], rendered as
//!   the same `{"error":"unknown command …"}` reply the stringly
//!   dispatch produced.

use crate::server::{CellLine, LiveSnapshot};
use crate::store::StoreStats;
use edgeperf_analysis::GroupKey;
use std::fmt;

/// Version of the line protocol this build speaks (`version` command).
pub const PROTOCOL_VERSION: u32 = 1;

/// Group predicate of a [`CellQuery`]: every present field must match.
/// The default (all `None`) matches every group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupFilter {
    /// Serving PoP.
    pub pop: Option<u16>,
    /// Client prefix as (base address, length).
    pub prefix: Option<(u32, u8)>,
    /// Client country id.
    pub country: Option<u16>,
    /// Client continent id.
    pub continent: Option<u8>,
}

impl GroupFilter {
    /// True when no field constrains the group.
    pub fn is_all(&self) -> bool {
        *self == GroupFilter::default()
    }

    /// Does `group` satisfy every present field?
    pub fn matches(&self, group: &GroupKey) -> bool {
        self.pop.is_none_or(|p| group.pop.0 == p)
            && self
                .prefix
                .is_none_or(|(base, len)| group.prefix.base == base && group.prefix.len == len)
            && self.country.is_none_or(|c| group.country == c)
            && self.continent.is_none_or(|c| group.continent == c)
    }
}

/// A time-range/group cell query. Window bounds are inclusive; `None`
/// means unbounded on that side. The default selects everything — the
/// legacy bare `cells`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellQuery {
    /// First window index included.
    pub from_window: Option<u32>,
    /// Last window index included.
    pub until_window: Option<u32>,
    /// Group predicate.
    pub group: GroupFilter,
}

impl CellQuery {
    /// True when the query selects every retained cell (bare `cells`).
    pub fn is_all(&self) -> bool {
        *self == CellQuery::default()
    }

    /// Does window index `window` fall inside the range?
    pub fn contains_window(&self, window: u32) -> bool {
        self.from_window.is_none_or(|lo| window >= lo)
            && self.until_window.is_none_or(|hi| window <= hi)
    }

    /// Does a cell at (`window`, `group`) satisfy the whole query?
    pub fn matches(&self, window: u32, group: &GroupKey) -> bool {
        self.contains_window(window) && self.group.matches(group)
    }

    fn parse_args(args: &[&str]) -> Result<CellQuery, ProtocolError> {
        let mut q = CellQuery::default();
        for arg in args {
            let (key, value) = arg.split_once('=').ok_or_else(|| ProtocolError::BadArgument {
                command: "cells",
                argument: (*arg).to_string(),
                message: "expected key=value".to_string(),
            })?;
            let bad = |message: String| ProtocolError::BadArgument {
                command: "cells",
                argument: (*arg).to_string(),
                message,
            };
            match key {
                "from" => {
                    q.from_window =
                        Some(value.parse().map_err(|_| bad(format!("bad window index {value}")))?)
                }
                "until" => {
                    q.until_window =
                        Some(value.parse().map_err(|_| bad(format!("bad window index {value}")))?)
                }
                "pop" => {
                    q.group.pop =
                        Some(value.parse().map_err(|_| bad(format!("bad pop id {value}")))?)
                }
                "prefix" => {
                    let (base, len) = value
                        .split_once('/')
                        .ok_or_else(|| bad("expected prefix=BASE/LEN".to_string()))?;
                    let base = base.parse().map_err(|_| bad(format!("bad prefix base {base}")))?;
                    let len = len.parse().map_err(|_| bad(format!("bad prefix length {len}")))?;
                    q.group.prefix = Some((base, len));
                }
                "country" => {
                    q.group.country =
                        Some(value.parse().map_err(|_| bad(format!("bad country id {value}")))?)
                }
                "continent" => {
                    q.group.continent =
                        Some(value.parse().map_err(|_| bad(format!("bad continent id {value}")))?)
                }
                other => return Err(bad(format!("unknown key {other}"))),
            }
        }
        Ok(q)
    }

    fn render_args(&self, out: &mut String) {
        use fmt::Write;
        if let Some(w) = self.from_window {
            write!(out, " from={w}").expect("write to string");
        }
        if let Some(w) = self.until_window {
            write!(out, " until={w}").expect("write to string");
        }
        if let Some(p) = self.group.pop {
            write!(out, " pop={p}").expect("write to string");
        }
        if let Some((base, len)) = self.group.prefix {
            write!(out, " prefix={base}/{len}").expect("write to string");
        }
        if let Some(c) = self.group.country {
            write!(out, " country={c}").expect("write to string");
        }
        if let Some(c) = self.group.continent {
            write!(out, " continent={c}").expect("write to string");
        }
    }
}

/// Every command a client can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Control-plane liveness round-trip.
    Ping,
    /// Aggregate [`LiveSnapshot`].
    Snapshot,
    /// Per-worker statistics.
    Stats,
    /// Closed cells matching the query (RAM + spilled segments).
    Cells(CellQuery),
    /// Observability metrics snapshot.
    Metrics,
    /// Tiered window-store statistics.
    Store,
    /// Protocol version handshake.
    Version,
    /// Declare a resumable ingest session: subsequent records on this
    /// connection belong to `session`, replayed at attempt `epoch`. The
    /// reply acks how many records the server already consumed.
    Hello {
        /// Client-chosen session id (stable across reconnects).
        session: u64,
        /// Monotone attempt number (bumped on every reconnect).
        epoch: u64,
    },
    /// Read a session's consumed-record ack without ingesting.
    Resume {
        /// The session id to look up.
        session: u64,
    },
    /// Raw-cells export for fleet-level merging: the matching cells
    /// *and* the accepted-record counter, served under one sync barrier
    /// so a coordinator can validate a merged view against per-node
    /// accounting without racing a separate `snapshot` round-trip.
    /// Version-gated: the mandatory `proto=` argument must name the
    /// protocol version the client speaks, so a digest consumer can
    /// never silently mis-parse a future layout.
    Digest {
        /// Protocol version the client speaks (`proto=` argument).
        proto: u32,
        /// Cell selection, same grammar as `cells`.
        query: CellQuery,
    },
    /// Drain the server and reply with the final snapshot.
    Shutdown,
    /// Close this connection.
    Quit,
}

impl Request {
    /// Parse one non-record protocol line (already trimmed, `{`-free).
    pub fn parse(line: &str) -> Result<Request, ProtocolError> {
        let mut parts = line.split_whitespace();
        let command = parts.next().unwrap_or("");
        let args: Vec<&str> = parts.collect();
        match (command, args.is_empty()) {
            ("ping", true) => Ok(Request::Ping),
            ("snapshot", true) => Ok(Request::Snapshot),
            ("stats", true) => Ok(Request::Stats),
            ("cells", _) => Ok(Request::Cells(CellQuery::parse_args(&args)?)),
            ("metrics", true) => Ok(Request::Metrics),
            ("store", true) => Ok(Request::Store),
            ("version", true) => Ok(Request::Version),
            ("hello", false) if args.len() == 2 => {
                let bad = |argument: &str, what: &str| ProtocolError::BadArgument {
                    command: "hello",
                    argument: argument.to_string(),
                    message: format!("bad {what}"),
                };
                Ok(Request::Hello {
                    session: args[0].parse().map_err(|_| bad(args[0], "session id"))?,
                    epoch: args[1].parse().map_err(|_| bad(args[1], "epoch"))?,
                })
            }
            ("digest", false) => {
                let proto = args[0]
                    .strip_prefix("proto=")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ProtocolError::BadArgument {
                        command: "digest",
                        argument: args[0].to_string(),
                        message: "expected proto=VERSION first".to_string(),
                    })?;
                Ok(Request::Digest { proto, query: CellQuery::parse_args(&args[1..])? })
            }
            ("resume", false) if args.len() == 1 => Ok(Request::Resume {
                session: args[0].parse().map_err(|_| ProtocolError::BadArgument {
                    command: "resume",
                    argument: args[0].to_string(),
                    message: "bad session id".to_string(),
                })?,
            }),
            ("shutdown", true) => Ok(Request::Shutdown),
            ("quit", true) => Ok(Request::Quit),
            // Legacy commands trailed by junk fall through here too, and
            // render the exact reply the stringly dispatch gave them.
            _ => Err(ProtocolError::UnknownCommand(line.to_string())),
        }
    }

    /// Render the wire line for this request (no trailing newline).
    /// `Request::parse(&req.wire_line())` round-trips for every request.
    pub fn wire_line(&self) -> String {
        match self {
            Request::Ping => "ping".to_string(),
            Request::Snapshot => "snapshot".to_string(),
            Request::Stats => "stats".to_string(),
            Request::Cells(q) => {
                let mut out = "cells".to_string();
                q.render_args(&mut out);
                out
            }
            Request::Metrics => "metrics".to_string(),
            Request::Store => "store".to_string(),
            Request::Version => "version".to_string(),
            Request::Digest { proto, query } => {
                let mut out = format!("digest proto={proto}");
                query.render_args(&mut out);
                out
            }
            Request::Hello { session, epoch } => format!("hello {session} {epoch}"),
            Request::Resume { session } => format!("resume {session}"),
            Request::Shutdown => "shutdown".to_string(),
            Request::Quit => "quit".to_string(),
        }
    }

    /// Does this request require the read-your-own-writes barrier (sync
    /// lanes before serving) like the legacy `snapshot`/`stats`/`cells`?
    pub fn needs_sync(&self) -> bool {
        matches!(
            self,
            Request::Snapshot
                | Request::Stats
                | Request::Cells(_)
                | Request::Store
                | Request::Digest { .. }
        )
    }
}

/// One row of the `stats` reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStatsLine {
    /// Worker index.
    pub worker: u64,
    /// Records this worker folded into windows.
    pub processed: u64,
    /// Records currently queued on the worker's lanes.
    pub queue_depth: u64,
    /// Distinct groups this worker has seen.
    pub groups: u64,
    /// Windows currently open on this worker's ring.
    pub open_windows: u64,
    /// Windows this worker has closed.
    pub windows_closed: u64,
}

/// Every reply the server can send. [`Response::render`] produces the
/// exact bytes (sans trailing newline); multi-line replies (`cells`)
/// embed interior newlines.
#[derive(Debug, Clone)]
pub enum Response {
    /// `ping` succeeded.
    Pong,
    /// `ping` found no worker (server draining).
    Gone,
    /// Aggregate snapshot.
    Snapshot(LiveSnapshot),
    /// Per-worker statistics.
    Stats(Vec<WorkerStatsLine>),
    /// Cell header + rows.
    Cells(Vec<CellLine>),
    /// Raw-cells digest export: header carrying the row count, the
    /// protocol version, and the accepted-record counter observed under
    /// the same sync barrier, then the rows in canonical order.
    Digest {
        /// Records folded into windows at serve time.
        accepted: u64,
        /// Matching cells, canonically sorted.
        cells: Vec<CellLine>,
    },
    /// Pre-serialized metrics snapshot JSON.
    Metrics(String),
    /// Tiered store statistics; `None` when spilling is not configured.
    Store(Option<StoreStats>),
    /// Protocol version handshake.
    Version,
    /// Cumulative consumed-record count for a resume session
    /// (`hello`/`resume` reply). Unknown sessions ack 0.
    Acked(u64),
    /// A `hello`/`resume` arrived while another connection still owns
    /// the session and did not retire within the hand-off deadline.
    SessionBusy,
    /// The server is draining and cannot serve state queries.
    Draining,
    /// The tiered store failed to serve the query (I/O or corruption).
    StoreError(String),
    /// The request line did not parse.
    Error(ProtocolError),
}

impl Response {
    /// Render the reply bytes (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Response::Pong => "pong".to_string(),
            Response::Gone => "gone".to_string(),
            Response::Snapshot(snap) => serde_json::to_string(snap).expect("snapshot serializes"),
            Response::Stats(rows) => {
                let rows: Vec<String> = rows
                    .iter()
                    .map(|s| {
                        format!(
                            "{{\"worker\":{},\"processed\":{},\"queue_depth\":{},\"groups\":{},\
                             \"open_windows\":{},\"windows_closed\":{}}}",
                            s.worker,
                            s.processed,
                            s.queue_depth,
                            s.groups,
                            s.open_windows,
                            s.windows_closed,
                        )
                    })
                    .collect();
                format!("{{\"workers\":[{}]}}", rows.join(","))
            }
            Response::Cells(cells) => {
                let mut out = format!("{{\"cells\":{}}}", cells.len());
                for cell in cells {
                    out.push('\n');
                    out.push_str(&serde_json::to_string(cell).expect("cell serializes"));
                }
                out
            }
            Response::Digest { accepted, cells } => {
                let mut out = format!(
                    "{{\"digest\":{},\"protocol\":{PROTOCOL_VERSION},\"accepted\":{accepted}}}",
                    cells.len()
                );
                for cell in cells {
                    out.push('\n');
                    out.push_str(&serde_json::to_string(cell).expect("cell serializes"));
                }
                out
            }
            Response::Metrics(json) => json.clone(),
            Response::Store(Some(stats)) => {
                serde_json::to_string(stats).expect("store stats serialize")
            }
            Response::Store(None) => "{\"error\":\"no spill directory configured\"}".to_string(),
            Response::Version => format!("{{\"protocol\":{PROTOCOL_VERSION}}}"),
            Response::Acked(n) => format!("{{\"acked\":{n}}}"),
            Response::SessionBusy => "{\"error\":\"session busy\"}".to_string(),
            Response::Draining => "{\"error\":\"draining\"}".to_string(),
            Response::StoreError(message) => {
                format!("{{\"error\":\"store: {}\"}}", message.replace('"', "'"))
            }
            Response::Error(err) => err.render(),
        }
    }
}

/// Parse the `{"cells":N}` header of a `cells` reply. The client used to
/// hand-roll this (and fell into a panicky allocation path on garbage);
/// now both sides share one strict parser with a typed error.
pub fn parse_cells_header(header: &str) -> Result<usize, ProtocolError> {
    header
        .strip_prefix("{\"cells\":")
        .and_then(|s| s.strip_suffix('}'))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ProtocolError::MalformedReply {
            expected: "{\"cells\":N}",
            got: header.to_string(),
        })
}

/// Parsed header of a `digest` reply, followed on the wire by
/// [`DigestHeader::cells`] rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestHeader {
    /// Rows that follow the header.
    pub cells: usize,
    /// Protocol version the server rendered the rows under.
    pub protocol: u32,
    /// Accepted-record counter at serve time (same sync barrier as the
    /// rows).
    pub accepted: u64,
}

/// Parse the `{"digest":N,"protocol":V,"accepted":M}` header of a
/// `digest` reply.
pub fn parse_digest_header(header: &str) -> Result<DigestHeader, ProtocolError> {
    let err = || ProtocolError::MalformedReply {
        expected: "{\"digest\":N,\"protocol\":V,\"accepted\":M}",
        got: header.to_string(),
    };
    let rest = header.strip_prefix("{\"digest\":").ok_or_else(err)?;
    let (cells, rest) = rest.split_once(",\"protocol\":").ok_or_else(err)?;
    let (protocol, rest) = rest.split_once(",\"accepted\":").ok_or_else(err)?;
    let accepted = rest.strip_suffix('}').ok_or_else(err)?;
    Ok(DigestHeader {
        cells: cells.parse().map_err(|_| err())?,
        protocol: protocol.parse().map_err(|_| err())?,
        accepted: accepted.parse().map_err(|_| err())?,
    })
}

/// Parse the `{"acked":N}` reply to `hello`/`resume` (client side).
pub fn parse_acked(line: &str) -> Result<u64, ProtocolError> {
    line.strip_prefix("{\"acked\":")
        .and_then(|s| s.strip_suffix('}'))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ProtocolError::MalformedReply {
            expected: "{\"acked\":N}",
            got: line.to_string(),
        })
}

/// What went wrong with a protocol line (either direction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The command word (or its argument shape) is not in the protocol.
    UnknownCommand(String),
    /// A recognized command carried an argument it cannot accept.
    BadArgument {
        /// The command being parsed.
        command: &'static str,
        /// The offending `key=value` token.
        argument: String,
        /// Why it was rejected.
        message: String,
    },
    /// A reply did not have the shape the protocol promises (client side).
    MalformedReply {
        /// The shape that was expected.
        expected: &'static str,
        /// The line actually received.
        got: String,
    },
}

impl ProtocolError {
    /// Render the server's error reply for this parse failure.
    /// Unknown commands keep the legacy `{"error":"unknown command …"}`
    /// bytes (with `"` flattened to `'`, as before).
    pub fn render(&self) -> String {
        match self {
            ProtocolError::UnknownCommand(line) => {
                format!("{{\"error\":\"unknown command {}\"}}", line.replace('"', "'"))
            }
            ProtocolError::BadArgument { command, argument, message } => format!(
                "{{\"error\":\"{command}: {}: {}\"}}",
                argument.replace('"', "'"),
                message.replace('"', "'")
            ),
            ProtocolError::MalformedReply { expected, got } => {
                format!(
                    "{{\"error\":\"malformed reply (expected {expected}): {}\"}}",
                    got.replace('"', "'")
                )
            }
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownCommand(line) => write!(f, "unknown command {line}"),
            ProtocolError::BadArgument { command, argument, message } => {
                write!(f, "{command}: bad argument {argument}: {message}")
            }
            ProtocolError::MalformedReply { expected, got } => {
                write!(f, "malformed reply (expected {expected}): {got}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<ProtocolError> for std::io::Error {
    fn from(err: ProtocolError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_bare_commands_parse() {
        assert_eq!(Request::parse("ping"), Ok(Request::Ping));
        assert_eq!(Request::parse("snapshot"), Ok(Request::Snapshot));
        assert_eq!(Request::parse("stats"), Ok(Request::Stats));
        assert_eq!(Request::parse("cells"), Ok(Request::Cells(CellQuery::default())));
        assert_eq!(Request::parse("metrics"), Ok(Request::Metrics));
        assert_eq!(Request::parse("shutdown"), Ok(Request::Shutdown));
        assert_eq!(Request::parse("quit"), Ok(Request::Quit));
        assert_eq!(Request::parse("store"), Ok(Request::Store));
        assert_eq!(Request::parse("version"), Ok(Request::Version));
    }

    #[test]
    fn resume_commands_parse_and_reject_bad_arguments() {
        assert_eq!(
            Request::parse("hello 12345 3"),
            Ok(Request::Hello { session: 12_345, epoch: 3 })
        );
        assert_eq!(Request::parse("resume 12345"), Ok(Request::Resume { session: 12_345 }));
        for line in ["hello 1 x", "hello x 1", "resume x", "resume -1"] {
            match Request::parse(line) {
                Err(ProtocolError::BadArgument { .. }) => {}
                other => panic!("{line}: expected BadArgument, got {other:?}"),
            }
        }
        // Wrong arity is an unknown command, like every other legacy
        // command trailed by the wrong argument shape.
        for line in ["hello", "hello 1", "hello 1 2 3", "resume", "resume 1 2"] {
            assert_eq!(
                Request::parse(line),
                Err(ProtocolError::UnknownCommand(line.to_string())),
                "{line}"
            );
        }
    }

    #[test]
    fn cells_arguments_parse_and_roundtrip() {
        let q = match Request::parse(
            "cells from=120 until=240 pop=3 prefix=167772160/24 country=7 continent=2",
        )
        .expect("parses")
        {
            Request::Cells(q) => q,
            other => panic!("expected cells, got {other:?}"),
        };
        assert_eq!(q.from_window, Some(120));
        assert_eq!(q.until_window, Some(240));
        assert_eq!(q.group.pop, Some(3));
        assert_eq!(q.group.prefix, Some((167_772_160, 24)));
        assert_eq!(q.group.country, Some(7));
        assert_eq!(q.group.continent, Some(2));
        assert!(!q.is_all());
        // render → parse is the identity.
        let line = Request::Cells(q).wire_line();
        assert_eq!(Request::parse(&line), Ok(Request::Cells(q)));
        // Every request round-trips through its own wire line.
        for req in [
            Request::Ping,
            Request::Snapshot,
            Request::Stats,
            Request::Cells(CellQuery::default()),
            Request::Metrics,
            Request::Store,
            Request::Version,
            Request::Hello { session: 7, epoch: 0 },
            Request::Resume { session: u64::MAX },
            Request::Digest { proto: PROTOCOL_VERSION, query: CellQuery::default() },
            Request::Shutdown,
            Request::Quit,
        ] {
            assert_eq!(Request::parse(&req.wire_line()), Ok(req));
        }
    }

    #[test]
    fn digest_requires_the_version_gate_and_accepts_cell_args() {
        // Bare `digest` is not in the protocol: the version argument is
        // mandatory, so a pre-digest client's guess stays an unknown
        // command and a digest consumer always states what it speaks.
        assert_eq!(
            Request::parse("digest"),
            Err(ProtocolError::UnknownCommand("digest".to_string()))
        );
        match Request::parse("digest from=0") {
            Err(ProtocolError::BadArgument { command: "digest", .. }) => {}
            other => panic!("expected BadArgument, got {other:?}"),
        }
        match Request::parse("digest proto=x") {
            Err(ProtocolError::BadArgument { command: "digest", .. }) => {}
            other => panic!("expected BadArgument, got {other:?}"),
        }
        let req = Request::parse("digest proto=1 from=2 until=4 pop=1").expect("parses");
        match req {
            Request::Digest { proto: 1, query } => {
                assert_eq!(query.from_window, Some(2));
                assert_eq!(query.until_window, Some(4));
                assert_eq!(query.group.pop, Some(1));
            }
            other => panic!("expected digest, got {other:?}"),
        }
        assert!(req.needs_sync(), "digest must observe the connection's own writes");
        assert_eq!(Request::parse(&req.wire_line()), Ok(req));
    }

    #[test]
    fn golden_digest_reply_and_header() {
        // New reply shape, pinned from day one like the legacy goldens.
        assert_eq!(
            Response::Digest { accepted: 12_345, cells: Vec::new() }.render(),
            "{\"digest\":0,\"protocol\":1,\"accepted\":12345}"
        );
        let cell = CellLine {
            window: 3,
            pop: 1,
            prefix_base: 167_772_160,
            prefix_len: 24,
            country: 7,
            continent: 2,
            rank: 0,
            relationship: "private".to_string(),
            longer_path: false,
            more_prepended: false,
            n: 10,
            n_tested: 8,
            bytes: 1_000,
            min_rtt_p50: 42.5,
            min_rtt_var: Some(0.25),
            hdratio_p50: None,
            hdratio_var: None,
        };
        let rendered = Response::Digest { accepted: 10, cells: vec![cell.clone()] }.render();
        let mut lines = rendered.lines();
        let header = parse_digest_header(lines.next().expect("header")).expect("header parses");
        assert_eq!(header, DigestHeader { cells: 1, protocol: PROTOCOL_VERSION, accepted: 10 });
        let back: CellLine = serde_json::from_str(lines.next().expect("row")).expect("row parses");
        assert_eq!(back, cell);
        assert_eq!(lines.next(), None);
        for bad in [
            "{\"digest\":1}",
            "{\"digest\":1,\"protocol\":1}",
            "{\"digest\":x,\"protocol\":1,\"accepted\":0}",
            "{\"cells\":1}",
            "",
            "pong",
        ] {
            assert!(parse_digest_header(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn bad_cells_arguments_are_typed() {
        for line in [
            "cells from=abc",
            "cells nonsense",
            "cells prefix=10.0.0.0",
            "cells color=red",
            "cells until=-3",
        ] {
            match Request::parse(line) {
                Err(ProtocolError::BadArgument { command: "cells", .. }) => {}
                other => panic!("{line}: expected BadArgument, got {other:?}"),
            }
        }
        // Legacy commands trailed by junk are unknown, like the stringly
        // dispatch treated them.
        assert_eq!(
            Request::parse("snapshot now"),
            Err(ProtocolError::UnknownCommand("snapshot now".to_string()))
        );
    }

    #[test]
    fn query_matching_honours_range_and_group() {
        let q = match Request::parse("cells from=2 until=4 pop=1").expect("parses") {
            Request::Cells(q) => q,
            other => panic!("{other:?}"),
        };
        let g1 = GroupKey {
            pop: edgeperf_routing::PopId(1),
            prefix: edgeperf_routing::Prefix::new(0x0A00_0000, 24),
            country: 7,
            continent: 2,
        };
        let g2 = GroupKey { pop: edgeperf_routing::PopId(2), ..g1 };
        assert!(q.matches(2, &g1) && q.matches(4, &g1));
        assert!(!q.matches(1, &g1) && !q.matches(5, &g1));
        assert!(!q.matches(3, &g2));
        assert!(CellQuery::default().matches(0, &g2));
        assert!(CellQuery::default().matches(u32::MAX, &g1));
    }

    /// The legacy replies, pinned byte for byte. These strings are the
    /// wire contract of protocol version 1 — if one of these assertions
    /// fails, existing clients break.
    #[test]
    fn golden_simple_replies() {
        assert_eq!(Response::Pong.render(), "pong");
        assert_eq!(Response::Gone.render(), "gone");
        assert_eq!(Response::Draining.render(), "{\"error\":\"draining\"}");
        assert_eq!(
            Response::Error(ProtocolError::UnknownCommand("bogus \"x\"".to_string())).render(),
            "{\"error\":\"unknown command bogus 'x'\"}"
        );
        assert_eq!(Response::Version.render(), "{\"protocol\":1}");
        assert_eq!(
            Response::Metrics("{\"counters\":{}}".to_string()).render(),
            "{\"counters\":{}}"
        );
        assert_eq!(Response::Acked(0).render(), "{\"acked\":0}");
        assert_eq!(Response::Acked(99_000).render(), "{\"acked\":99000}");
    }

    /// The `store` reply including the degraded-mode health fields,
    /// pinned byte for byte alongside the legacy goldens.
    #[test]
    fn golden_store_reply_carries_spill_health() {
        let stats = StoreStats {
            segments: 2,
            cells: 26,
            bytes: 2_048,
            from_window: Some(3),
            until_window: Some(4),
            spilled_windows: 2,
            spilled_cells: 26,
            compactions: 0,
            spill_errors: 5,
            degraded: true,
        };
        assert_eq!(
            Response::Store(Some(stats)).render(),
            "{\"segments\":2,\"cells\":26,\"bytes\":2048,\"from_window\":3,\"until_window\":4,\
             \"spilled_windows\":2,\"spilled_cells\":26,\"compactions\":0,\"spill_errors\":5,\
             \"degraded\":true}"
        );
        assert_eq!(Response::Store(None).render(), "{\"error\":\"no spill directory configured\"}");
        // Replies from servers predating the health fields still parse.
        let legacy: StoreStats = serde_json::from_str(
            "{\"segments\":1,\"cells\":9,\"bytes\":512,\"from_window\":1,\"until_window\":1,\
             \"spilled_windows\":1,\"spilled_cells\":9,\"compactions\":0}",
        )
        .expect("legacy reply parses");
        assert_eq!(legacy.spill_errors, 0);
        assert!(!legacy.degraded);
    }

    #[test]
    fn acked_header_parses_strictly() {
        assert_eq!(parse_acked("{\"acked\":17}"), Ok(17));
        assert_eq!(parse_acked("{\"acked\":0}"), Ok(0));
        for bad in ["{\"acked\":}", "{\"acked\":-1}", "acked 17", "{\"ack\":17}", "", "pong"] {
            assert!(parse_acked(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn golden_stats_reply() {
        let rows = vec![
            WorkerStatsLine {
                worker: 0,
                processed: 100,
                queue_depth: 3,
                groups: 7,
                open_windows: 2,
                windows_closed: 9,
            },
            WorkerStatsLine {
                worker: 1,
                processed: 50,
                queue_depth: 0,
                groups: 4,
                open_windows: 1,
                windows_closed: 5,
            },
        ];
        assert_eq!(
            Response::Stats(rows).render(),
            "{\"workers\":[\
             {\"worker\":0,\"processed\":100,\"queue_depth\":3,\"groups\":7,\"open_windows\":2,\"windows_closed\":9},\
             {\"worker\":1,\"processed\":50,\"queue_depth\":0,\"groups\":4,\"open_windows\":1,\"windows_closed\":5}\
             ]}"
        );
    }

    #[test]
    fn golden_cells_reply_and_header() {
        assert_eq!(Response::Cells(Vec::new()).render(), "{\"cells\":0}");
        let cell = CellLine {
            window: 3,
            pop: 1,
            prefix_base: 167_772_160,
            prefix_len: 24,
            country: 7,
            continent: 2,
            rank: 0,
            relationship: "private".to_string(),
            longer_path: false,
            more_prepended: false,
            n: 10,
            n_tested: 8,
            bytes: 1_000,
            min_rtt_p50: 42.5,
            min_rtt_var: Some(0.25),
            hdratio_p50: None,
            hdratio_var: None,
        };
        let rendered = Response::Cells(vec![cell.clone()]).render();
        let mut lines = rendered.lines();
        assert_eq!(lines.next(), Some("{\"cells\":1}"));
        let row = lines.next().expect("one row");
        assert_eq!(lines.next(), None);
        let back: CellLine = serde_json::from_str(row).expect("row parses");
        assert_eq!(back, cell);
        // Header parser: the strict shared path both sides use.
        assert_eq!(parse_cells_header("{\"cells\":17}"), Ok(17));
        for bad in ["{\"cells\":}", "{\"cells\":-1}", "cells 17", "{\"cell\":17}", ""] {
            assert!(parse_cells_header(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn golden_snapshot_reply_matches_serde() {
        let snap = LiveSnapshot { workers: 4, accepted: 10, ..LiveSnapshot::default() };
        assert_eq!(
            Response::Snapshot(snap.clone()).render(),
            serde_json::to_string(&snap).unwrap()
        );
    }

    #[test]
    fn malformed_header_error_is_typed_not_panicky() {
        let err = parse_cells_header("{\"cells\":18446744073709551616}").unwrap_err();
        match &err {
            ProtocolError::MalformedReply { expected, .. } => {
                assert_eq!(*expected, "{\"cells\":N}");
            }
            other => panic!("expected MalformedReply, got {other:?}"),
        }
        let io: std::io::Error = err.into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
    }
}
