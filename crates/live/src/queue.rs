//! Lock-free bounded SPSC ring queues and the spin-then-park waiters
//! that back the live server's reader → worker fan-out.
//!
//! The PR-5 fan-out was one `std::sync::mpsc::sync_channel` per worker,
//! shared by every reader through a `Mutex<Vec<SyncSender>>`. Each send
//! took the channel's internal lock, and each batch `Vec` was allocated
//! by the reader and freed by the worker — so adding cores added lock
//! hand-offs and allocator traffic instead of throughput (the committed
//! `BENCH_live.json` anti-scaled: 2.69M sessions/s at 1 worker, 2.22M
//! at 16). This module replaces that wall with:
//!
//! - [`spsc`]: a fixed-capacity single-producer/single-consumer ring,
//!   one per (reader, worker) pair. The hot path is two cache lines
//!   (head and tail indices, each padded) with *cached* peer indices,
//!   so a push or pop in steady state is a couple of relaxed loads, a
//!   slot write, and one release store — no locks, no CAS loops, no
//!   shared allocator state.
//! - [`Waiter`]: the spin-then-park handshake used when a ring is full
//!   (reader parks until the worker frees a slot) or a worker runs out
//!   of work (parks until any of its producers ring its doorbell).
//!   Blocking preserves the server's "block, never drop" backpressure
//!   semantics; the park path takes a mutex, but only on the
//!   empty/full edges, never in steady state.
//!
//! Recycling rides the same primitive: each lane pairs its data ring
//! with a reverse ring carrying spent batch `Vec`s back to the reader,
//! so steady-state ingest performs zero allocations per batch.
//!
//! ## Memory ordering
//!
//! The ring is the textbook SPSC proof: the producer writes the slot,
//! then publishes with a release store of `tail`; the consumer acquires
//! `tail` before reading the slot, and releases `head` after taking the
//! value, which the producer acquires before reusing the slot. The
//! park/notify handshake is the Dekker store→fence→load pattern (see
//! [`Waiter`]) with a timed backstop so a theoretically lost wakeup
//! costs a bounded stall, never a deadlock.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Pad to a cache line so the producer-owned and consumer-owned indices
/// never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Ring<T> {
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next write position (owned by the producer, read by the consumer).
    tail: CachePadded<AtomicUsize>,
    /// Next read position (owned by the consumer, read by the producer).
    head: CachePadded<AtomicUsize>,
    /// Producer gone; set after its final push, so `closed && empty`
    /// means no more items will ever arrive.
    closed: AtomicBool,
}

// SAFETY: slots are only touched through the SPSC protocol — each slot
// is written by the single producer strictly before the release store of
// `tail` that hands it to the single consumer, and reused only after the
// consumer's release store of `head` hands it back.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Sole owner at this point: drop whatever is still queued.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        for pos in head..tail {
            let slot = self.slots[pos & self.mask].get();
            // SAFETY: positions in [head, tail) hold initialized values.
            unsafe { (*slot).assume_init_drop() };
        }
    }
}

/// The sending half of an [`spsc`] ring. Dropping it closes the ring.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Local copy of `ring.tail` (we are the only writer).
    tail: usize,
    /// Last observed `ring.head`; refreshed only when the ring looks full.
    cached_head: usize,
}

// SAFETY: one producer handle exists per ring and it is only moved, so
// sending it to another thread preserves the single-producer invariant.
unsafe impl<T: Send> Send for Producer<T> {}

impl<T> Producer<T> {
    /// Push without blocking; hands the value back when the ring is full.
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        let cap = self.ring.mask + 1;
        if self.tail.wrapping_sub(self.cached_head) == cap {
            self.cached_head = self.ring.head.0.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.cached_head) == cap {
                return Err(value);
            }
        }
        let slot = self.ring.slots[self.tail & self.ring.mask].get();
        // SAFETY: the slot at `tail` is unused — the consumer released
        // it via `head` (checked above) and no other producer exists.
        unsafe { (*slot).write(value) };
        self.tail = self.tail.wrapping_add(1);
        self.ring.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// True when a `try_push` would currently succeed. Reloads the
    /// consumer index, so it is exact at the time of the load — the
    /// park condition for a blocked producer.
    pub fn has_space(&self) -> bool {
        let cap = self.ring.mask + 1;
        let head = self.ring.head.0.load(Ordering::Acquire);
        self.tail.wrapping_sub(head) < cap
    }

    /// Queued items right now (exact at the time of the loads).
    pub fn len(&self) -> usize {
        self.tail.wrapping_sub(self.ring.head.0.load(Ordering::Acquire))
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot count of the ring.
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// The consumer is gone (dropped, e.g. its thread panicked), so
    /// nothing will ever free a slot again — a blocked producer must
    /// give up instead of parking forever.
    pub fn is_abandoned(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

/// The receiving half of an [`spsc`] ring.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Local copy of `ring.head` (we are the only writer).
    head: usize,
    /// Last observed `ring.tail`; refreshed only when the ring looks empty.
    cached_tail: usize,
}

// SAFETY: mirror of the Producer argument — one consumer handle per ring.
unsafe impl<T: Send> Send for Consumer<T> {}

impl<T> Consumer<T> {
    /// Pop without blocking; `None` when the ring is currently empty.
    pub fn try_pop(&mut self) -> Option<T> {
        if self.cached_tail == self.head {
            self.cached_tail = self.ring.tail.0.load(Ordering::Acquire);
            if self.cached_tail == self.head {
                return None;
            }
        }
        let slot = self.ring.slots[self.head & self.ring.mask].get();
        // SAFETY: positions below `tail` were written and released by
        // the producer; we are the only reader.
        let value = unsafe { (*slot).assume_init_read() };
        self.head = self.head.wrapping_add(1);
        self.ring.head.0.store(self.head, Ordering::Release);
        Some(value)
    }

    /// Queued items right now (exact at the time of the loads).
    pub fn len(&self) -> usize {
        self.ring.tail.0.load(Ordering::Acquire).wrapping_sub(self.head)
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The producer is gone. Check **before** a final [`Self::try_pop`]:
    /// the close flag is set after the producer's last push, so observing
    /// it (acquire) guarantees every prior push is visible — `closed`
    /// then an empty pop means the ring is drained for good.
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // Mirror of the producer drop: the same flag doubles as
        // "abandoned" for a producer whose consumer died first.
        self.ring.closed.store(true, Ordering::Release);
    }
}

/// A bounded single-producer/single-consumer ring with `capacity`
/// rounded up to the next power of two (min 1).
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(1).next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let ring = Arc::new(Ring {
        mask: cap - 1,
        slots,
        tail: CachePadded(AtomicUsize::new(0)),
        head: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
    });
    (
        Producer { ring: Arc::clone(&ring), tail: 0, cached_head: 0 },
        Consumer { ring, head: 0, cached_tail: 0 },
    )
}

/// How long a parked thread waits before re-checking its condition even
/// without a notify — the lost-wakeup backstop. Parking only happens on
/// the empty/full edges, so this bounds a worst-case stall, not
/// steady-state latency.
const PARK_BACKSTOP: Duration = Duration::from_millis(10);

/// Spin iterations before parking. Cheap enough to hide a peer that is
/// only one batch away, without burning a core when it is genuinely slow.
const SPIN: u32 = 64;

/// Spin-then-park rendezvous for exactly one waiting thread.
///
/// The fast path for a notifier that finds no one waiting is a fence
/// plus one relaxed load. The waiter publishes `waiting = true`
/// (seq-cst), re-checks its condition behind a seq-cst fence, and only
/// then parks on the condvar; the notifier makes its progress visible,
/// fences, and checks `waiting`. In the seq-cst total order one of the
/// two observes the other, so a wakeup can only be missed across the
/// unfenced interior of the condvar hand-off — which the
/// [`PARK_BACKSTOP`] re-check bounds.
pub struct Waiter {
    waiting: AtomicBool,
    epoch: Mutex<u64>,
    cv: Condvar,
}

impl Default for Waiter {
    fn default() -> Self {
        Waiter { waiting: AtomicBool::new(false), epoch: Mutex::new(0), cv: Condvar::new() }
    }
}

impl Waiter {
    /// Wake the parked peer, if any. Call *after* the progress it waits
    /// for (a freed slot, a pushed item) is published.
    pub fn notify(&self) {
        fence(Ordering::SeqCst);
        if self.waiting.load(Ordering::Relaxed) && self.waiting.swap(false, Ordering::SeqCst) {
            let mut epoch = self.epoch.lock().expect("waiter epoch");
            *epoch = epoch.wrapping_add(1);
            drop(epoch);
            self.cv.notify_all();
        }
    }

    /// Block until `cond()` holds, spinning briefly first. The caller's
    /// peer must [`Self::notify`] after any change that could make
    /// `cond()` true.
    pub fn wait_until(&self, mut cond: impl FnMut() -> bool) {
        for _ in 0..SPIN {
            if cond() {
                return;
            }
            std::hint::spin_loop();
        }
        loop {
            self.waiting.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            if cond() {
                self.waiting.store(false, Ordering::Relaxed);
                return;
            }
            let mut epoch = self.epoch.lock().expect("waiter epoch");
            if !self.waiting.load(Ordering::SeqCst) {
                // A notify slipped in between our store and the lock;
                // it bumped the epoch for a wait we never started.
                continue;
            }
            let seen = *epoch;
            while *epoch == seen {
                let (guard, timeout) =
                    self.cv.wait_timeout(epoch, PARK_BACKSTOP).expect("waiter condvar");
                epoch = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            drop(epoch);
            self.waiting.store(false, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::thread;

    #[test]
    fn push_pop_preserves_order_across_wraparound() {
        let (mut tx, mut rx) = spsc::<u64>(8);
        let mut next_expected = 0u64;
        let mut next_sent = 0u64;
        // Many times the capacity, in ragged bursts, to cross the index
        // wrap mask repeatedly.
        for burst in 1..64 {
            for _ in 0..(burst % 5) + 1 {
                if tx.try_push(next_sent).is_ok() {
                    next_sent += 1;
                }
            }
            while let Some(v) = rx.try_pop() {
                assert_eq!(v, next_expected);
                next_expected += 1;
            }
        }
        assert_eq!(next_expected, next_sent);
    }

    #[test]
    fn try_push_fails_only_when_full_and_capacity_is_exact() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        assert_eq!(tx.capacity(), 4);
        for i in 0..4 {
            assert!(tx.try_push(i).is_ok());
        }
        assert_eq!(tx.try_push(99), Err(99));
        assert!(!tx.has_space());
        assert_eq!(rx.try_pop(), Some(0));
        assert!(tx.has_space());
        assert!(tx.try_push(4).is_ok());
        assert_eq!(rx.len(), 4);
    }

    #[test]
    fn close_is_observed_after_the_final_push() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert!(!rx.is_closed());
        drop(tx);
        // closed ⇒ every prior push is visible; drain then done.
        assert!(rx.is_closed());
        assert_eq!(rx.try_pop(), Some(1));
        assert_eq!(rx.try_pop(), Some(2));
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn dropping_a_nonempty_ring_drops_queued_values() {
        let counter = Arc::new(AtomicU64::new(0));
        #[derive(Debug)]
        struct Probe(Arc<AtomicU64>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = spsc::<Probe>(8);
        for _ in 0..5 {
            tx.try_push(Probe(Arc::clone(&counter))).unwrap();
        }
        drop(tx);
        drop(rx);
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn blocked_producer_resumes_when_consumer_frees_slots() {
        let (mut tx, mut rx) = spsc::<u64>(2);
        let bell = Arc::new(Waiter::default());
        let total = 10_000u64;
        let producer = {
            let bell = Arc::clone(&bell);
            thread::spawn(move || {
                for i in 0..total {
                    let mut item = i;
                    loop {
                        match tx.try_push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                bell.wait_until(|| tx.has_space());
                            }
                        }
                    }
                }
            })
        };
        let mut got = 0u64;
        while got < total {
            match rx.try_pop() {
                Some(v) => {
                    assert_eq!(v, got);
                    got += 1;
                    bell.notify();
                }
                None => thread::yield_now(),
            }
        }
        producer.join().expect("producer");
        // Capacity 2 and 10k items: the producer must have blocked; the
        // assertion above already proved zero drops and exact order.
        assert_eq!(got, total);
    }

    #[test]
    fn parked_consumer_wakes_on_notify() {
        let (mut tx, mut rx) = spsc::<u64>(8);
        let bell = Arc::new(Waiter::default());
        let consumer = {
            let bell = Arc::clone(&bell);
            thread::spawn(move || {
                let mut sum = 0u64;
                loop {
                    bell.wait_until(|| !rx.is_empty() || rx.is_closed());
                    let closed = rx.is_closed();
                    match rx.try_pop() {
                        Some(v) => sum += v,
                        None if closed => break,
                        None => {}
                    }
                }
                sum
            })
        };
        for i in 0..100u64 {
            loop {
                match tx.try_push(i) {
                    Ok(()) => break,
                    Err(_) => thread::yield_now(),
                }
            }
            bell.notify();
        }
        drop(tx);
        bell.notify();
        let sum = consumer.join().expect("consumer");
        assert_eq!(sum, (0..100u64).sum());
    }
}
