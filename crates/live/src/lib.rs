//! `edgeperf-live`: streaming session-ingest server with sliding
//! 15-minute windows and online degradation detection.
//!
//! The offline pipeline replays a finished study; this crate serves the
//! same estimator and statistics *while the data arrives*. A
//! multi-threaded TCP server (no async runtime — `std::net` acceptor,
//! one reader thread per connection, sharded bounded-queue workers)
//! parses JSONL session records, folds them into a watermark-driven
//! ring of event-time windows of per-group
//! [`edgeperf_analysis::StreamingAggregation`] cells, and on window
//! close computes MinRTT_P50 / HDratio_P50 with Price–Bonett CIs and
//! feeds the degradation/classification machinery online.
//!
//! Module map:
//!
//! - [`config`]: [`LiveConfig`] — address, workers, window geometry,
//!   lateness bound, queue capacity, retention, detection thresholds.
//! - [`record`]: [`LiveRecord`] and the pluggable [`LineParser`] wire
//!   trait (the umbrella `edgeperf` crate supplies the JSONL format).
//! - [`frame`]: the length-prefixed binary wire format — preamble
//!   negotiation, bit-exact little-endian frame codec, and the
//!   zero-allocation incremental [`FrameDecoder`].
//! - [`window`]: [`WindowRing`] — the watermark, late-record rejection
//!   ([`edgeperf_core::EdgeperfError::LateRecord`], counted, never
//!   silent), and [`CellSummary`] with the same bit-exact statistics as
//!   the offline streaming path.
//! - [`detect`]: [`OnlineDetector`] — per-group baseline, degradation
//!   events, episode tracking and temporal classes, computed as windows
//!   close.
//! - [`queue`]: the lock-free bounded SPSC ring ([`spsc`]) and
//!   spin-then-park [`Waiter`] backing the reader → worker fan-out.
//! - [`chaos`]: [`ChaosPlan`] — deterministic, seeded wire/disk fault
//!   injection (disconnects, torn frames, stalls, worker panics,
//!   ENOSPC/EIO on spill and compaction), the live-tier sibling of the
//!   offline supervisor's FaultPlan.
//! - [`protocol`]: the typed, versioned line protocol —
//!   [`Request`]/[`Response`] and the one parse/render path shared by
//!   server and client, byte-compatible with the legacy bare commands.
//! - [`store`]: the tiered window store — [`SegmentStore`] spills
//!   windows evicted past the RAM retention horizon into columnar
//!   on-disk segments (manifest-tracked, crash-safe, background
//!   compaction) that `cells` range queries merge back bit-identically.
//! - [`server`]: [`LiveServer`] / [`ServerHandle`], request serving,
//!   backpressure, heartbeat supervision and graceful drain.
//! - [`client`]: [`LiveClient`], the blocking protocol client used by
//!   the load generator and the agreement tests.
//!
//! The cross-cutting invariant: a finite replay through the server is
//! **bit-identical** to the offline [`edgeperf_analysis::StreamingDataset`]
//! at any worker count, because groups are sharded by the same
//! deterministic FxHash and each cell's digest therefore sees the same
//! insertion sequence as the serial offline pass.

pub mod chaos;
pub mod client;
pub mod config;
pub mod detect;
pub mod frame;
pub mod protocol;
pub mod queue;
pub mod record;
pub mod server;
pub mod store;
pub mod window;

pub use chaos::{ChaosPlan, ChaosPlanError, WireChaos, WireFault};
pub use client::{
    replay_with_resume, BinarySender, LiveClient, ResumeInput, ResumeReport, RetryPolicy,
};
pub use config::{LiveConfig, ServeBuilder};
pub use detect::{EpisodeChange, OnlineDetector};
pub use frame::{
    decode_body, encode_frame, hello_block, parse_hello, parse_preamble, preamble,
    preamble_with_hello, FrameDecoder, FRAME_BODY_LEN, FRAME_MAGIC, FRAME_VERSION, FRAME_WIRE_LEN,
    HELLO_LEN, HELLO_MAGIC, PREAMBLE_FLAG_HELLO, PREAMBLE_LEN,
};
pub use protocol::{
    parse_acked, parse_cells_header, parse_digest_header, CellQuery, DigestHeader, GroupFilter,
    ProtocolError, Request, Response, WorkerStatsLine, PROTOCOL_VERSION,
};
pub use queue::{spsc, Consumer, Producer, Waiter};
pub use record::{relationship_from_label, LineParser, LiveRecord};
pub use server::{
    cell_line_sort_key, shard_of, CellLine, ClassCount, LiveServer, LiveSnapshot, ReasonCount,
    ServerHandle,
};
pub use store::{CrashPoint, SegmentMeta, SegmentStore, SpillOutcome, StoreStats};
pub use window::{
    compare_hdratio_summaries, compare_minrtt_summaries, CellKey, CellSummary, ClosedWindow,
    LiveCell, WindowRing,
};
