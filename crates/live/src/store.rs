//! Tiered window store: closed windows spilled to columnar on-disk
//! segments once they age past the in-RAM retention horizon.
//!
//! Each worker keeps its last [`crate::LiveConfig::retention_windows`]
//! closed windows in RAM, exactly as before. With a spill directory
//! configured, a window evicted from that map is first handed here:
//! its cells become one [`WindowCell`] run, sorted into the canonical
//! order, encoded with the shared columnar codec
//! ([`edgeperf_analysis::segment`]) and written under the tmp + rename
//! discipline. Spilling stores the **final summary bit patterns**, not
//! the digests, so a historical query merged with live RAM windows is
//! bit-identical to a run that never spilled: a change of address, not
//! of value.
//!
//! ## Manifest and crash safety
//!
//! `manifest.json` is the single source of truth for which segments
//! exist. The write order is fixed: segment staged → segment renamed →
//! manifest staged → manifest renamed → (compaction only) old files
//! deleted. A crash between any two steps leaves either an orphan
//! `.tmp` or an unreferenced `.seg`, both removed by
//! [`SegmentStore::open`] on restart — the manifest can never reference
//! a torn or missing segment. [`CrashPoint`] lets tests stop the store
//! at each boundary and prove that invariant.
//!
//! ## Compaction
//!
//! Every spill produces one small per-(worker, window) segment. Once
//! enough accumulate, [`SegmentStore::compact_once`] (driven by the
//! server's background compactor thread) merges the smallest batch into
//! one time-sorted segment — same codec, same manifest discipline —
//! keeping segment count (and per-query open/decode work) bounded.
//!
//! ## Degraded mode
//!
//! A disk that starts failing (ENOSPC, EIO, a yanked volume) must not
//! take the live tier down with it, and must not silently shed history
//! either. After `spill_fail_threshold` *consecutive* spill failures
//! the store enters **degraded** mode: spill attempts are skipped
//! without touching the disk — the server keeps the evicted windows in
//! RAM instead (RAM-only retention; see `server::handle_close`) — and
//! every few skipped attempts one *probe* spill goes to disk anyway,
//! with the skip run doubling after each failed probe
//! ([`INITIAL_PROBE_SKIP`] → [`MAX_PROBE_SKIP`]). The first probe that
//! succeeds clears degraded mode and the server's retained backlog
//! drains through the normal eviction loop. The state is visible:
//! [`StoreStats::spill_errors`] and [`StoreStats::degraded`] ride the
//! `store` protocol reply, and the server mirrors them into the
//! `store.spill_errors` / `store.degraded` metrics.
//!
//! Fault injection ([`SegmentStore::set_chaos`]) drives all of this
//! deterministically: a [`ChaosPlan`]'s `spillfail`/`compactfail`/
//! `spilldelay` clauses fire by 0-based operation index, so a test (or
//! the CI chaos job) can script "spills 0–2 fail, then the disk heals"
//! and assert the exact degraded/recovered sequence.

use crate::chaos::ChaosPlan;
use crate::protocol::CellQuery;
use crate::server::CellLine;
use crate::window::{CellKey, CellSummary};
use edgeperf_analysis::segment::{
    decode_segment, encode_segment, sort_cells, stage, window_span, WindowCell,
};
use edgeperf_core::EdgeperfError;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Current manifest format version.
const MANIFEST_VERSION: u64 = 1;

/// File name of the manifest inside the spill directory.
const MANIFEST_FILE: &str = "manifest.json";

/// Flatten one closed cell into its storage-neutral segment row.
pub fn window_cell(window: u32, key: &CellKey, s: &CellSummary) -> WindowCell {
    let (group, rank) = key;
    WindowCell {
        window,
        group: *group,
        rank: *rank,
        relationship: s.relationship,
        longer_path: s.longer_path,
        more_prepended: s.more_prepended,
        n: u64::try_from(s.n).expect("usize fits u64"),
        n_tested: u64::try_from(s.n_tested).expect("usize fits u64"),
        bytes: s.bytes,
        min_rtt_p50: s.min_rtt_p50,
        min_rtt_var: s.min_rtt_var,
        hdratio_p50: s.hdratio_p50,
        hdratio_var: s.hdratio_var,
    }
}

/// Flatten a segment row into the wire form served by `cells` — the
/// same representation [`CellLine::new`] builds from a RAM window, so
/// disk- and RAM-sourced cells are indistinguishable on the wire.
pub fn cell_line(c: &WindowCell) -> CellLine {
    CellLine {
        window: c.window,
        pop: c.group.pop.0,
        prefix_base: c.group.prefix.base,
        prefix_len: c.group.prefix.len,
        country: c.group.country,
        continent: c.group.continent,
        rank: c.rank,
        relationship: c.relationship.label().to_string(),
        longer_path: c.longer_path,
        more_prepended: c.more_prepended,
        n: c.n,
        n_tested: c.n_tested,
        bytes: c.bytes,
        min_rtt_p50: c.min_rtt_p50,
        min_rtt_var: c.min_rtt_var,
        hdratio_p50: c.hdratio_p50,
        hdratio_var: c.hdratio_var,
    }
}

/// One segment the manifest references.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SegmentMeta {
    /// Store-unique segment id (also the file name stem).
    pub id: u64,
    /// File name inside the spill directory.
    pub file: String,
    /// Cell rows in the segment.
    pub cells: u64,
    /// First window index covered.
    pub from_window: u32,
    /// Last window index covered.
    pub until_window: u32,
    /// Encoded size in bytes (validated against the file on open).
    pub bytes: u64,
}

/// The on-disk manifest image.
#[derive(Debug, Serialize, Deserialize)]
struct Manifest {
    version: u64,
    next_id: u64,
    segments: Vec<SegmentMeta>,
}

/// Store statistics served by the `store` command.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct StoreStats {
    /// Segments currently referenced by the manifest.
    pub segments: u64,
    /// Cell rows across those segments.
    pub cells: u64,
    /// Bytes across those segments.
    pub bytes: u64,
    /// First window index any segment covers.
    pub from_window: Option<u32>,
    /// Last window index any segment covers.
    pub until_window: Option<u32>,
    /// Windows spilled since this store opened.
    pub spilled_windows: u64,
    /// Cells spilled since this store opened.
    pub spilled_cells: u64,
    /// Compaction merges since this store opened.
    pub compactions: u64,
    /// Spill attempts that failed on disk (absent in replies from
    /// before degraded mode existed).
    #[serde(default)]
    pub spill_errors: u64,
    /// The store is currently in degraded (RAM-only retention) mode.
    #[serde(default)]
    pub degraded: bool,
}

/// Where an injected crash stops the store mid-operation. Test-only
/// instrumentation: each point sits on one boundary of the fixed write
/// order, so tests can prove recovery holds across every cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashPoint {
    /// Normal operation.
    #[default]
    None,
    /// Segment bytes staged at `.tmp`, not yet renamed.
    BeforeSegmentRename,
    /// Segment renamed into place, manifest untouched.
    BeforeManifestStage,
    /// New manifest staged at `.tmp`, old manifest still live.
    BeforeManifestRename,
}

/// What a spill attempt did (the `Ok` half; disk failures are `Err`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillOutcome {
    /// The window is durably on disk (or was empty; nothing to write).
    Spilled,
    /// Degraded mode skipped the disk entirely: the caller must keep
    /// the window in RAM and retry on a later eviction pass.
    DegradedSkip,
}

/// Skipped spill attempts after entering degraded mode, before the
/// first re-probe of the disk.
const INITIAL_PROBE_SKIP: u64 = 2;

/// Cap on the skip run between probes (each failed probe doubles it).
const MAX_PROBE_SKIP: u64 = 64;

/// In-memory mirror of the manifest plus session counters. Mutated only
/// under the store lock, and only after the corresponding disk state is
/// durable.
#[derive(Default)]
struct StoreState {
    next_id: u64,
    segments: Vec<SegmentMeta>,
    spilled_windows: u64,
    spilled_cells: u64,
    compactions: u64,
    /// Spill attempts that failed on disk (injected or real).
    spill_errors: u64,
    /// Consecutive spill failures; reset by any success.
    consecutive_failures: u64,
    /// Degraded (RAM-only retention) mode is active.
    degraded: bool,
    /// Skipped attempts remaining before the next probe.
    skip_remaining: u64,
    /// Length of the next skip run (doubles per failed probe).
    probe_skip: u64,
    /// Injected fault schedule (empty in production).
    chaos: ChaosPlan,
    /// Spill attempts that reached the disk path (chaos op index).
    spill_ops: u64,
    /// Compaction merges attempted (chaos op index).
    compact_ops: u64,
}

/// The tiered window store. One per server, shared by every worker
/// (spills), the protocol query path and the background compactor.
pub struct SegmentStore {
    dir: PathBuf,
    /// Compaction triggers once this many segments exist.
    compact_min_segments: usize,
    /// Segments merged per compaction round.
    compact_batch: usize,
    /// Consecutive spill failures that flip the store into degraded
    /// (RAM-only retention) mode.
    spill_fail_threshold: u64,
    state: Mutex<StoreState>,
    crash: Mutex<CrashPoint>,
}

fn corrupt(message: String) -> EdgeperfError {
    EdgeperfError::Segment { message }
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> EdgeperfError {
    corrupt(format!("{context} {}: {e}", path.display()))
}

impl SegmentStore {
    /// Open (or create) the store at `dir`, replaying the manifest:
    /// validate every referenced segment file and sweep orphan `.seg` /
    /// `.tmp` files a crash may have left behind.
    pub fn open(
        dir: &Path,
        compact_min_segments: usize,
        compact_batch: usize,
        spill_fail_threshold: u32,
    ) -> Result<SegmentStore, EdgeperfError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create spill dir", dir, e))?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let mut state = StoreState::default();
        if manifest_path.exists() {
            let text = std::fs::read_to_string(&manifest_path)
                .map_err(|e| io_err("read manifest", &manifest_path, e))?;
            let manifest: Manifest = serde_json::from_str(&text)
                .map_err(|e| corrupt(format!("manifest does not parse: {e}")))?;
            if manifest.version != MANIFEST_VERSION {
                return Err(corrupt(format!("unsupported manifest version {}", manifest.version)));
            }
            for meta in &manifest.segments {
                let path = dir.join(&meta.file);
                let md = std::fs::metadata(&path)
                    .map_err(|e| io_err("manifest references missing segment", &path, e))?;
                if md.len() != meta.bytes {
                    return Err(corrupt(format!(
                        "segment {} is {} bytes, manifest says {}",
                        meta.file,
                        md.len(),
                        meta.bytes
                    )));
                }
            }
            state.next_id = manifest.next_id;
            state.segments = manifest.segments;
        }
        // Sweep anything the manifest does not own: staged `.tmp` files
        // and segments whose manifest update never landed. Also advance
        // `next_id` past every orphan id so a failed removal can never
        // collide with a future spill.
        let entries = std::fs::read_dir(dir).map_err(|e| io_err("list spill dir", dir, e))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let referenced = name == MANIFEST_FILE || state.segments.iter().any(|m| m.file == name);
            if referenced {
                continue;
            }
            if name.ends_with(".tmp") || name.ends_with(".seg") {
                if let Some(id) = segment_file_id(name) {
                    state.next_id = state.next_id.max(id + 1);
                }
                let _ = std::fs::remove_file(entry.path());
            }
        }
        state.probe_skip = INITIAL_PROBE_SKIP;
        Ok(SegmentStore {
            dir: dir.to_path_buf(),
            compact_min_segments: compact_min_segments.max(2),
            compact_batch: compact_batch.max(2),
            spill_fail_threshold: u64::from(spill_fail_threshold.max(1)),
            state: Mutex::new(state),
            crash: Mutex::new(CrashPoint::None),
        })
    }

    /// Arm a deterministic disk-fault schedule (`spillfail` /
    /// `compactfail` / `spilldelay` clauses; the rest are ignored here).
    pub fn set_chaos(&self, plan: ChaosPlan) {
        self.state.lock().expect("store state").chaos = plan;
    }

    /// The store is currently in degraded (RAM-only retention) mode.
    pub fn is_degraded(&self) -> bool {
        self.state.lock().expect("store state").degraded
    }

    /// Spill attempts that failed on disk since this store opened.
    pub fn spill_error_count(&self) -> u64 {
        self.state.lock().expect("store state").spill_errors
    }

    /// The spill directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arm the next matching operation boundary to fail as if the
    /// process died there (test instrumentation; see [`CrashPoint`]).
    pub fn inject_crash(&self, point: CrashPoint) {
        *self.crash.lock().expect("crash point") = point;
    }

    fn crashed_at(&self, point: CrashPoint) -> Result<(), EdgeperfError> {
        if *self.crash.lock().expect("crash point") == point {
            return Err(corrupt(format!("injected crash at {point:?}")));
        }
        Ok(())
    }

    /// Spill one evicted window. The cells arrive exactly as the
    /// worker's RAM map held them; they are sorted into canonical order
    /// and written as one segment, then the manifest commits it.
    ///
    /// In degraded mode most attempts return
    /// [`SpillOutcome::DegradedSkip`] without touching the disk; the
    /// caller must keep the window in RAM and offer it again on a later
    /// eviction pass. Every `probe_skip`-th attempt goes to disk as a
    /// probe — the first success clears degraded mode.
    pub fn spill_window(
        &self,
        index: u32,
        cells: &[(CellKey, CellSummary)],
    ) -> Result<SpillOutcome, EdgeperfError> {
        let mut rows: Vec<WindowCell> =
            cells.iter().map(|(key, s)| window_cell(index, key, s)).collect();
        sort_cells(&mut rows);
        let mut state = self.state.lock().expect("store state");
        if rows.is_empty() {
            state.spilled_windows += 1;
            return Ok(SpillOutcome::Spilled);
        }
        if state.degraded && state.skip_remaining > 0 {
            state.skip_remaining -= 1;
            return Ok(SpillOutcome::DegradedSkip);
        }
        let op = state.spill_ops;
        state.spill_ops += 1;
        if let Some(delay) = state.chaos.spill_delay(op) {
            std::thread::sleep(delay);
        }
        let result = if state.chaos.spill_fails(op) {
            Err(corrupt(format!("injected ENOSPC (chaos, spill op {op})")))
        } else {
            self.spill_to_disk(&mut state, rows)
        };
        match result {
            Ok(()) => {
                state.spilled_windows += 1;
                state.consecutive_failures = 0;
                state.degraded = false;
                state.probe_skip = INITIAL_PROBE_SKIP;
                Ok(SpillOutcome::Spilled)
            }
            Err(e) => {
                state.spill_errors += 1;
                state.consecutive_failures += 1;
                if state.degraded || state.consecutive_failures >= self.spill_fail_threshold {
                    state.degraded = true;
                    state.skip_remaining = state.probe_skip;
                    state.probe_skip = (state.probe_skip * 2).min(MAX_PROBE_SKIP);
                }
                Err(e)
            }
        }
    }

    /// The disk half of a spill: durably place the segment, then commit
    /// the manifest referencing it.
    fn spill_to_disk(
        &self,
        state: &mut StoreState,
        rows: Vec<WindowCell>,
    ) -> Result<(), EdgeperfError> {
        let meta = self.write_segment(state, rows)?;
        state.spilled_cells += meta.cells;
        let mut segments = state.segments.clone();
        segments.push(meta);
        self.commit_manifest(state, segments)
    }

    /// Encode and durably place one segment file (staged, then renamed).
    /// The manifest is NOT updated here — an untracked `.seg` is the
    /// worst a crash after this can leave.
    fn write_segment(
        &self,
        state: &mut StoreState,
        rows: Vec<WindowCell>,
    ) -> Result<SegmentMeta, EdgeperfError> {
        let (from_window, until_window) = window_span(&rows).expect("non-empty segment");
        let image = encode_segment(&rows);
        let id = state.next_id;
        state.next_id += 1;
        let file = format!("seg-{id:08}.seg");
        let path = self.dir.join(&file);
        let tmp = stage(&path, &image).map_err(|e| io_err("stage segment", &path, e))?;
        self.crashed_at(CrashPoint::BeforeSegmentRename)?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err("rename segment", &path, e))?;
        Ok(SegmentMeta {
            id,
            file,
            cells: u64::try_from(rows.len()).expect("usize fits u64"),
            from_window,
            until_window,
            bytes: u64::try_from(image.len()).expect("usize fits u64"),
        })
    }

    /// Write the manifest naming `segments`, then mirror it into
    /// `state`. In-memory state moves only after the rename lands, so
    /// the mirror never gets ahead of disk.
    fn commit_manifest(
        &self,
        state: &mut StoreState,
        segments: Vec<SegmentMeta>,
    ) -> Result<(), EdgeperfError> {
        self.crashed_at(CrashPoint::BeforeManifestStage)?;
        let manifest = Manifest { version: MANIFEST_VERSION, next_id: state.next_id, segments };
        let text = serde_json::to_string(&manifest)
            .map_err(|e| corrupt(format!("manifest does not serialize: {e}")))?;
        let path = self.dir.join(MANIFEST_FILE);
        let tmp = stage(&path, text.as_bytes()).map_err(|e| io_err("stage manifest", &path, e))?;
        self.crashed_at(CrashPoint::BeforeManifestRename)?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err("rename manifest", &path, e))?;
        state.segments = manifest.segments;
        Ok(())
    }

    /// Read every cell matching `q` out of the manifested segments.
    /// Segments whose window span misses the query range are skipped
    /// without being opened.
    pub fn query(&self, q: &CellQuery) -> Result<Vec<WindowCell>, EdgeperfError> {
        let state = self.state.lock().expect("store state");
        let mut out = Vec::new();
        for meta in &state.segments {
            let overlaps = q.from_window.is_none_or(|lo| lo <= meta.until_window)
                && q.until_window.is_none_or(|hi| hi >= meta.from_window);
            if !overlaps {
                continue;
            }
            let path = self.dir.join(&meta.file);
            let bytes = std::fs::read(&path).map_err(|e| io_err("read segment", &path, e))?;
            let cells = decode_segment(&bytes)?;
            out.extend(cells.into_iter().filter(|c| q.matches(c.window, &c.group)));
        }
        Ok(out)
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> StoreStats {
        let state = self.state.lock().expect("store state");
        let mut stats = StoreStats {
            segments: u64::try_from(state.segments.len()).expect("usize fits u64"),
            spilled_windows: state.spilled_windows,
            spilled_cells: state.spilled_cells,
            compactions: state.compactions,
            spill_errors: state.spill_errors,
            degraded: state.degraded,
            ..StoreStats::default()
        };
        for meta in &state.segments {
            stats.cells += meta.cells;
            stats.bytes += meta.bytes;
            stats.from_window =
                Some(stats.from_window.map_or(meta.from_window, |w| w.min(meta.from_window)));
            stats.until_window =
                Some(stats.until_window.map_or(meta.until_window, |w| w.max(meta.until_window)));
        }
        stats
    }

    /// Would [`compact_once`](Self::compact_once) do work right now?
    /// Cheap enough for the compactor thread to poll.
    pub fn needs_compaction(&self) -> bool {
        self.state.lock().expect("store state").segments.len() >= self.compact_min_segments
    }

    /// Merge the smallest batch of segments into one time-sorted
    /// segment. Returns whether a merge happened. Old files are deleted
    /// only after the new manifest lands; a crash in between leaves
    /// orphan `.seg` files for the next open to sweep.
    pub fn compact_once(&self) -> Result<bool, EdgeperfError> {
        let mut state = self.state.lock().expect("store state");
        if state.segments.len() < self.compact_min_segments {
            return Ok(false);
        }
        let op = state.compact_ops;
        state.compact_ops += 1;
        if state.chaos.compact_fails(op) {
            return Err(corrupt(format!("injected EIO (chaos, compaction op {op})")));
        }
        // Victims: the smallest segments by cell count (ties by id, so
        // the choice — and the merged output — is deterministic).
        let mut by_size: Vec<usize> = (0..state.segments.len()).collect();
        by_size.sort_by_key(|&i| (state.segments[i].cells, state.segments[i].id));
        let victims: Vec<usize> = by_size.into_iter().take(self.compact_batch).collect();
        let mut rows = Vec::new();
        for &i in &victims {
            let path = self.dir.join(&state.segments[i].file);
            let bytes = std::fs::read(&path).map_err(|e| io_err("read segment", &path, e))?;
            rows.extend(decode_segment(&bytes)?);
        }
        sort_cells(&mut rows);
        let merged = self.write_segment(&mut state, rows)?;
        let mut segments: Vec<SegmentMeta> = state
            .segments
            .iter()
            .enumerate()
            .filter(|(i, _)| !victims.contains(i))
            .map(|(_, m)| m.clone())
            .collect();
        let old_files: Vec<String> =
            victims.iter().map(|&i| state.segments[i].file.clone()).collect();
        segments.push(merged);
        self.commit_manifest(&mut state, segments)?;
        state.compactions += 1;
        for file in old_files {
            let _ = std::fs::remove_file(self.dir.join(file));
        }
        Ok(true)
    }
}

/// `seg-XXXXXXXX.seg[.tmp]` → `XXXXXXXX` as an id, if the name matches.
fn segment_file_id(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?.split('.').next().and_then(|stem| stem.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeperf_analysis::GroupKey;
    use edgeperf_routing::{PopId, Prefix, Relationship};

    fn summary(seed: u64) -> CellSummary {
        CellSummary {
            n: usize::try_from(seed % 90 + 10).unwrap(),
            n_tested: usize::try_from(seed % 50).unwrap(),
            bytes: seed * 1_003,
            min_rtt_p50: 20.0 + seed as f64 * 0.31,
            min_rtt_var: (!seed.is_multiple_of(3)).then_some(1e-3 * seed as f64),
            hdratio_p50: (seed % 4 != 1).then(|| (seed % 100) as f64 / 100.0),
            hdratio_var: seed.is_multiple_of(5).then(|| 2e-4 * (seed + 1) as f64),
            relationship: match seed % 3 {
                0 => Relationship::PrivatePeer,
                1 => Relationship::PublicPeer,
                _ => Relationship::Transit,
            },
            longer_path: seed % 2 == 1,
            more_prepended: seed.is_multiple_of(7),
        }
    }

    fn key(seed: u64) -> CellKey {
        (
            GroupKey {
                pop: PopId(u16::try_from(seed % 4).unwrap()),
                prefix: Prefix::new(u32::try_from((seed % 100) << 16).unwrap(), 16),
                country: u16::try_from(seed % 30).unwrap(),
                continent: u8::try_from(seed % 5).unwrap(),
            },
            u8::try_from(seed % 3).unwrap(),
        )
    }

    fn window(seed: u64, n: usize) -> Vec<(CellKey, CellSummary)> {
        (0..n)
            .map(|i| {
                let s = seed * 1_000 + u64::try_from(i).unwrap();
                (key(s), summary(s))
            })
            .collect()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("edgeperf-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spill_then_query_is_bit_identical() {
        let dir = tmpdir("roundtrip");
        let store = SegmentStore::open(&dir, 8, 8, 3).expect("opens");
        let w3 = window(3, 17);
        let w4 = window(4, 9);
        store.spill_window(3, &w3).expect("spills");
        store.spill_window(4, &w4).expect("spills");
        let got = store.query(&CellQuery::default()).expect("queries");
        assert_eq!(got.len(), w3.len() + w4.len());
        let mut expected: Vec<WindowCell> = w3
            .iter()
            .map(|(k, s)| window_cell(3, k, s))
            .chain(w4.iter().map(|(k, s)| window_cell(4, k, s)))
            .collect();
        sort_cells(&mut expected);
        let mut got_sorted = got.clone();
        sort_cells(&mut got_sorted);
        for (a, b) in expected.iter().zip(&got_sorted) {
            assert_eq!(a.group, b.group);
            assert_eq!(a.min_rtt_p50.to_bits(), b.min_rtt_p50.to_bits());
            assert_eq!(a.min_rtt_var.map(f64::to_bits), b.min_rtt_var.map(f64::to_bits));
            assert_eq!(a.hdratio_p50.map(f64::to_bits), b.hdratio_p50.map(f64::to_bits));
        }
        // Range and group filters prune.
        let only3 = store
            .query(&CellQuery { from_window: Some(3), until_window: Some(3), ..Default::default() })
            .expect("queries");
        assert_eq!(only3.len(), w3.len());
        assert!(only3.iter().all(|c| c.window == 3));
        let stats = store.stats();
        assert_eq!(stats.segments, 2);
        assert_eq!(stats.spilled_windows, 2);
        assert_eq!(stats.from_window, Some(3));
        assert_eq!(stats.until_window, Some(4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_replays_the_manifest_and_sweeps_orphans() {
        let dir = tmpdir("reopen");
        {
            let store = SegmentStore::open(&dir, 8, 8, 3).expect("opens");
            store.spill_window(1, &window(1, 5)).expect("spills");
            store.spill_window(2, &window(2, 6)).expect("spills");
        }
        // Fake crash leftovers: a staged tmp and an unreferenced segment.
        edgeperf_analysis::atomic_write(&dir.join("seg-00000099.seg"), b"torn").unwrap();
        edgeperf_analysis::stage(&dir.join("seg-00000100.seg"), b"staged").unwrap();
        let store = SegmentStore::open(&dir, 8, 8, 3).expect("reopens");
        assert!(!dir.join("seg-00000099.seg").exists(), "orphan segment swept");
        assert!(!dir.join("seg-00000100.seg.tmp").exists(), "orphan tmp swept");
        assert_eq!(store.query(&CellQuery::default()).expect("queries").len(), 11);
        // Ids never collide with swept orphans.
        store.spill_window(3, &window(3, 2)).expect("spills");
        let stats = store.stats();
        assert_eq!(stats.segments, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_crash_point_recovers_without_a_torn_manifest() {
        for point in [
            CrashPoint::BeforeSegmentRename,
            CrashPoint::BeforeManifestStage,
            CrashPoint::BeforeManifestRename,
        ] {
            let dir = tmpdir(&format!("crash-{point:?}"));
            let cells_before;
            {
                let store = SegmentStore::open(&dir, 8, 8, 3).expect("opens");
                store.spill_window(1, &window(1, 4)).expect("spills");
                cells_before = store.query(&CellQuery::default()).expect("queries").len();
                store.inject_crash(point);
                store.spill_window(2, &window(2, 7)).expect_err("crash injected");
            }
            // Recovery: the manifest must parse, reference only intact
            // files, and still serve everything it committed before the
            // crash. The interrupted spill is simply absent.
            let store = SegmentStore::open(&dir, 8, 8, 3)
                .unwrap_or_else(|e| panic!("{point:?}: recovery failed: {e}"));
            let after = store.query(&CellQuery::default()).expect("queries");
            assert_eq!(after.len(), cells_before, "{point:?}");
            // No stray staging files survive recovery.
            for entry in std::fs::read_dir(&dir).unwrap().flatten() {
                let name = entry.file_name().to_string_lossy().to_string();
                assert!(!name.ends_with(".tmp"), "{point:?} left {name}");
            }
            // And the store keeps working.
            store.spill_window(2, &window(2, 7)).expect("spills after recovery");
            assert_eq!(
                store.query(&CellQuery::default()).expect("queries").len(),
                cells_before + 7
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn compaction_merges_small_segments_and_preserves_cells() {
        let dir = tmpdir("compact");
        let store = SegmentStore::open(&dir, 4, 4, 3).expect("opens");
        for w in 0..6u32 {
            store.spill_window(w, &window(u64::from(w), 3)).expect("spills");
        }
        assert!(store.needs_compaction());
        let before = {
            let mut v = store.query(&CellQuery::default()).expect("queries");
            sort_cells(&mut v);
            v
        };
        assert!(store.compact_once().expect("compacts"));
        let stats = store.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.segments, 3, "4 victims merged into 1, 2 untouched");
        let after = {
            let mut v = store.query(&CellQuery::default()).expect("queries");
            sort_cells(&mut v);
            v
        };
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.group, b.group);
            assert_eq!(a.window, b.window);
            assert_eq!(a.min_rtt_p50.to_bits(), b.min_rtt_p50.to_bits());
        }
        // Compacting below the threshold is a no-op.
        assert!(!store.compact_once().expect("no-op"));
        // Reopen still serves the merged state.
        drop(store);
        let store = SegmentStore::open(&dir, 4, 4, 3).expect("reopens");
        assert_eq!(store.query(&CellQuery::default()).expect("queries").len(), before.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_windows_are_counted_but_not_written() {
        let dir = tmpdir("empty");
        let store = SegmentStore::open(&dir, 8, 8, 3).expect("opens");
        store.spill_window(9, &[]).expect("spills nothing");
        let stats = store.stats();
        assert_eq!(stats.spilled_windows, 1);
        assert_eq!(stats.segments, 0);
        assert!(store.query(&CellQuery::default()).expect("queries").is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn consecutive_failures_enter_degraded_mode_and_a_probe_recovers() {
        let dir = tmpdir("degraded");
        let store = SegmentStore::open(&dir, 8, 8, 3).expect("opens");
        store.set_chaos(ChaosPlan::parse("spillfail:0@3").expect("plan"));
        for op in 0..3u64 {
            assert!(!store.is_degraded(), "not degraded before op {op}");
            let err = store.spill_window(1, &window(1, 4)).expect_err("injected");
            assert!(err.to_string().contains("injected ENOSPC"), "op {op}: {err}");
        }
        assert!(store.is_degraded(), "threshold 3 reached");
        assert_eq!(store.spill_error_count(), 3);
        // Two skipped attempts before the first probe — no disk contact.
        for _ in 0..2 {
            assert_eq!(
                store.spill_window(2, &window(2, 4)).expect("skips"),
                SpillOutcome::DegradedSkip
            );
        }
        // The probe reaches the (now healthy) disk and clears degraded.
        assert_eq!(store.spill_window(3, &window(3, 4)).expect("probes"), SpillOutcome::Spilled);
        assert!(!store.is_degraded());
        let stats = store.stats();
        assert_eq!(stats.spill_errors, 3);
        assert!(!stats.degraded);
        assert_eq!(stats.spilled_windows, 1, "only the successful spill counts");
        assert_eq!(stats.segments, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_probes_double_the_skip_run() {
        let dir = tmpdir("probe-doubling");
        let store = SegmentStore::open(&dir, 8, 8, 1).expect("opens");
        store.set_chaos(ChaosPlan::parse("spillfail:0@2").expect("plan"));
        // Op 0 fails → degraded at threshold 1, first skip run of 2.
        store.spill_window(1, &window(1, 3)).expect_err("fails");
        assert!(store.is_degraded());
        for _ in 0..2 {
            assert_eq!(
                store.spill_window(1, &window(1, 3)).expect("skips"),
                SpillOutcome::DegradedSkip
            );
        }
        // The probe (op 1) fails too → the skip run doubles to 4.
        store.spill_window(1, &window(1, 3)).expect_err("probe fails");
        for _ in 0..4 {
            assert_eq!(
                store.spill_window(1, &window(1, 3)).expect("skips"),
                SpillOutcome::DegradedSkip
            );
        }
        // The next probe (op 2) is past the fault window and recovers.
        assert_eq!(store.spill_window(1, &window(1, 3)).expect("probes"), SpillOutcome::Spilled);
        assert!(!store.is_degraded());
        assert_eq!(store.spill_error_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_faults_are_injected_by_op_index() {
        let dir = tmpdir("compactfail");
        let store = SegmentStore::open(&dir, 4, 4, 3).expect("opens");
        store.set_chaos(ChaosPlan::parse("compactfail:0").expect("plan"));
        for w in 0..4u32 {
            store.spill_window(w, &window(u64::from(w), 3)).expect("spills");
        }
        let err = store.compact_once().expect_err("injected");
        assert!(err.to_string().contains("injected EIO"), "{err}");
        // The next attempt (op 1) is past the fault window and succeeds.
        assert!(store.compact_once().expect("compacts"));
        assert_eq!(store.stats().compactions, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
