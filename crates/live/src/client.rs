//! Blocking client for the live server's line protocol.
//!
//! Used by the load generator, the CI smoke job and the agreement
//! tests; also a reference implementation of the protocol for external
//! tooling. Command lines are produced by [`Request::wire_line`] and
//! replies parsed by the [`crate::protocol`] helpers — the client never
//! hand-rolls wire syntax, so it cannot drift from the server. Data
//! lines are buffered (flushed before any command round-trip) so replay
//! throughput is not bounded by per-line syscalls.

use crate::frame::{encode_frame, preamble};
use crate::protocol::{parse_cells_header, CellQuery, ProtocolError, Request, PROTOCOL_VERSION};
use crate::record::LiveRecord;
use crate::server::{CellLine, LiveSnapshot};
use crate::store::StoreStats;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Rows preallocated from a `cells` header before rows actually arrive.
/// The header is untrusted input: a malformed or hostile count must not
/// translate into an unbounded upfront allocation.
const MAX_PREALLOC_CELLS: usize = 1 << 16;

/// A blocking connection to a [`crate::LiveServer`].
pub struct LiveClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    line: String,
}

impl LiveClient {
    /// Connect to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<LiveClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = BufWriter::with_capacity(1 << 18, stream.try_clone()?);
        Ok(LiveClient { reader: BufReader::new(stream), writer, line: String::new() })
    }

    /// Enqueue one session record line (buffered; no response).
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Flush buffered record lines to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    fn round_trip(&mut self, request: &Request) -> io::Result<String> {
        self.writer.write_all(request.wire_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> io::Result<String> {
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"));
        }
        Ok(self.line.trim_end().to_string())
    }

    /// Round-trip a `ping` through a worker queue. The elapsed time is
    /// the end-to-end ingest latency: socket + parse + queue wait.
    pub fn ping(&mut self) -> io::Result<Duration> {
        let start = Instant::now();
        let reply = self.round_trip(&Request::Ping)?;
        if reply != "pong" {
            return Err(io::Error::new(io::ErrorKind::InvalidData, format!("ping: {reply}")));
        }
        Ok(start.elapsed())
    }

    /// Fetch the aggregate server snapshot.
    pub fn snapshot(&mut self) -> io::Result<LiveSnapshot> {
        let reply = self.round_trip(&Request::Snapshot)?;
        serde_json::from_str(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Fetch every retained closed cell (RAM and, when the server
    /// spills, the on-disk tier too).
    pub fn cells(&mut self) -> io::Result<Vec<CellLine>> {
        self.cells_query(&CellQuery::default())
    }

    /// Fetch the closed cells matching a window-range/group query.
    pub fn cells_query(&mut self, query: &CellQuery) -> io::Result<Vec<CellLine>> {
        let header = self.round_trip(&Request::Cells(*query))?;
        let count = parse_cells_header(&header).map_err(|err| match err {
            // Surface a server-side error reply as-is instead of
            // wrapping it in "malformed header" noise.
            ProtocolError::MalformedReply { ref got, .. } if got.starts_with("{\"error\"") => {
                io::Error::other(got.clone())
            }
            err => err.into(),
        })?;
        let mut out = Vec::with_capacity(count.min(MAX_PREALLOC_CELLS));
        for _ in 0..count {
            let line = self.read_reply()?;
            let cell: CellLine = serde_json::from_str(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            out.push(cell);
        }
        Ok(out)
    }

    /// Fetch the tiered window-store statistics. Errors with the
    /// server's reply when no spill directory is configured.
    pub fn store_stats(&mut self) -> io::Result<StoreStats> {
        let reply = self.round_trip(&Request::Store)?;
        if reply.starts_with("{\"error\"") {
            return Err(io::Error::other(reply));
        }
        serde_json::from_str(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Fetch the server's protocol version and check it against this
    /// client's [`PROTOCOL_VERSION`].
    pub fn version(&mut self) -> io::Result<u32> {
        let reply = self.round_trip(&Request::Version)?;
        let version: u32 = reply
            .strip_prefix("{\"protocol\":")
            .and_then(|s| s.strip_suffix('}'))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::from(ProtocolError::MalformedReply {
                    expected: "{\"protocol\":N}",
                    got: reply.clone(),
                })
            })?;
        if version != PROTOCOL_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server speaks protocol {version}, client speaks {PROTOCOL_VERSION}"),
            ));
        }
        Ok(version)
    }

    /// Fetch the observability metrics snapshot as raw JSON.
    pub fn metrics_json(&mut self) -> io::Result<String> {
        self.round_trip(&Request::Metrics)
    }

    /// Fetch the per-worker stats line as raw JSON.
    pub fn stats_json(&mut self) -> io::Result<String> {
        self.round_trip(&Request::Stats)
    }

    /// Drain the server and return its final snapshot. Close every data
    /// connection first: the drain force-closes other connections, and
    /// any bytes still queued on their sockets are discarded by the OS.
    pub fn shutdown(&mut self) -> io::Result<LiveSnapshot> {
        let reply = self.round_trip(&Request::Shutdown)?;
        serde_json::from_str(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// A data-only binary-mode connection to a [`crate::LiveServer`].
///
/// Sends the [`crate::frame`] preamble on connect and then encodes each
/// record as one length-prefixed frame into a buffered writer. Binary
/// connections carry no commands — pair with a [`LiveClient`] control
/// connection for `snapshot` / `shutdown` round-trips.
pub struct BinarySender {
    out: BufWriter<TcpStream>,
}

impl BinarySender {
    /// Connect and negotiate binary mode.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<BinarySender> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut out = BufWriter::with_capacity(1 << 18, stream);
        out.write_all(&preamble())?;
        Ok(BinarySender { out })
    }

    /// Enqueue one record (buffered; no response).
    pub fn send(&mut self, record: &LiveRecord) -> io::Result<()> {
        self.out.write_all(&encode_frame(record))
    }

    /// Flush buffered frames to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Flush and close the connection.
    pub fn finish(mut self) -> io::Result<()> {
        self.out.flush()
    }
}
