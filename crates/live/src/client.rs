//! Blocking client for the live server's line protocol.
//!
//! Used by the load generator, the CI smoke job and the agreement
//! tests; also a reference implementation of the protocol for external
//! tooling. Data lines are buffered (flushed before any command
//! round-trip) so replay throughput is not bounded by per-line
//! syscalls.

use crate::frame::{encode_frame, preamble};
use crate::record::LiveRecord;
use crate::server::{CellLine, LiveSnapshot};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A blocking connection to a [`crate::LiveServer`].
pub struct LiveClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    line: String,
}

impl LiveClient {
    /// Connect to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<LiveClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = BufWriter::with_capacity(1 << 18, stream.try_clone()?);
        Ok(LiveClient { reader: BufReader::new(stream), writer, line: String::new() })
    }

    /// Enqueue one session record line (buffered; no response).
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Flush buffered record lines to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    fn round_trip(&mut self, command: &str) -> io::Result<String> {
        self.writer.write_all(command.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> io::Result<String> {
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"));
        }
        Ok(self.line.trim_end().to_string())
    }

    /// Round-trip a `ping` through a worker queue. The elapsed time is
    /// the end-to-end ingest latency: socket + parse + queue wait.
    pub fn ping(&mut self) -> io::Result<Duration> {
        let start = Instant::now();
        let reply = self.round_trip("ping")?;
        if reply != "pong" {
            return Err(io::Error::new(io::ErrorKind::InvalidData, format!("ping: {reply}")));
        }
        Ok(start.elapsed())
    }

    /// Fetch the aggregate server snapshot.
    pub fn snapshot(&mut self) -> io::Result<LiveSnapshot> {
        let reply = self.round_trip("snapshot")?;
        serde_json::from_str(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Fetch every retained closed cell.
    pub fn cells(&mut self) -> io::Result<Vec<CellLine>> {
        let header = self.round_trip("cells")?;
        let count: usize = header
            .strip_prefix("{\"cells\":")
            .and_then(|s| s.strip_suffix('}'))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("cells: {header}"))
            })?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let line = self.read_reply()?;
            let cell: CellLine = serde_json::from_str(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            out.push(cell);
        }
        Ok(out)
    }

    /// Fetch the observability metrics snapshot as raw JSON.
    pub fn metrics_json(&mut self) -> io::Result<String> {
        self.round_trip("metrics")
    }

    /// Fetch the per-worker stats line as raw JSON.
    pub fn stats_json(&mut self) -> io::Result<String> {
        self.round_trip("stats")
    }

    /// Drain the server and return its final snapshot. Close every data
    /// connection first: the drain force-closes other connections, and
    /// any bytes still queued on their sockets are discarded by the OS.
    pub fn shutdown(&mut self) -> io::Result<LiveSnapshot> {
        let reply = self.round_trip("shutdown")?;
        serde_json::from_str(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// A data-only binary-mode connection to a [`crate::LiveServer`].
///
/// Sends the [`crate::frame`] preamble on connect and then encodes each
/// record as one length-prefixed frame into a buffered writer. Binary
/// connections carry no commands — pair with a [`LiveClient`] control
/// connection for `snapshot` / `shutdown` round-trips.
pub struct BinarySender {
    out: BufWriter<TcpStream>,
}

impl BinarySender {
    /// Connect and negotiate binary mode.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<BinarySender> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut out = BufWriter::with_capacity(1 << 18, stream);
        out.write_all(&preamble())?;
        Ok(BinarySender { out })
    }

    /// Enqueue one record (buffered; no response).
    pub fn send(&mut self, record: &LiveRecord) -> io::Result<()> {
        self.out.write_all(&encode_frame(record))
    }

    /// Flush buffered frames to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Flush and close the connection.
    pub fn finish(mut self) -> io::Result<()> {
        self.out.flush()
    }
}
