//! Blocking client for the live server's line protocol.
//!
//! Used by the load generator, the CI smoke job and the agreement
//! tests; also a reference implementation of the protocol for external
//! tooling. Command lines are produced by [`Request::wire_line`] and
//! replies parsed by the [`crate::protocol`] helpers — the client never
//! hand-rolls wire syntax, so it cannot drift from the server. Data
//! lines are buffered (flushed before any command round-trip) so replay
//! throughput is not bounded by per-line syscalls.

use crate::chaos::{WireChaos, WireFault};
use crate::frame::{encode_frame, hello_block, preamble, preamble_with_hello};
use crate::protocol::{
    parse_acked, parse_cells_header, parse_digest_header, CellQuery, DigestHeader, ProtocolError,
    Request, PROTOCOL_VERSION,
};
use crate::record::LiveRecord;
use crate::server::{CellLine, LiveSnapshot};
use crate::store::StoreStats;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Rows preallocated from a `cells` header before rows actually arrive.
/// The header is untrusted input: a malformed or hostile count must not
/// translate into an unbounded upfront allocation.
const MAX_PREALLOC_CELLS: usize = 1 << 16;

/// A blocking connection to a [`crate::LiveServer`].
pub struct LiveClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    line: String,
}

impl LiveClient {
    /// Connect to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<LiveClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = BufWriter::with_capacity(1 << 18, stream.try_clone()?);
        Ok(LiveClient { reader: BufReader::new(stream), writer, line: String::new() })
    }

    /// Enqueue one session record line (buffered; no response).
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Flush buffered record lines to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    fn round_trip(&mut self, request: &Request) -> io::Result<String> {
        self.writer.write_all(request.wire_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> io::Result<String> {
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"));
        }
        Ok(self.line.trim_end().to_string())
    }

    /// Round-trip a `ping` through a worker queue. The elapsed time is
    /// the end-to-end ingest latency: socket + parse + queue wait.
    pub fn ping(&mut self) -> io::Result<Duration> {
        let start = Instant::now();
        let reply = self.round_trip(&Request::Ping)?;
        if reply != "pong" {
            return Err(io::Error::new(io::ErrorKind::InvalidData, format!("ping: {reply}")));
        }
        Ok(start.elapsed())
    }

    /// Fetch the aggregate server snapshot.
    pub fn snapshot(&mut self) -> io::Result<LiveSnapshot> {
        let reply = self.round_trip(&Request::Snapshot)?;
        serde_json::from_str(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Fetch every retained closed cell (RAM and, when the server
    /// spills, the on-disk tier too).
    pub fn cells(&mut self) -> io::Result<Vec<CellLine>> {
        self.cells_query(&CellQuery::default())
    }

    /// Fetch the closed cells matching a window-range/group query.
    pub fn cells_query(&mut self, query: &CellQuery) -> io::Result<Vec<CellLine>> {
        let header = self.round_trip(&Request::Cells(*query))?;
        let count = parse_cells_header(&header).map_err(|err| match err {
            // Surface a server-side error reply as-is instead of
            // wrapping it in "malformed header" noise.
            ProtocolError::MalformedReply { ref got, .. } if got.starts_with("{\"error\"") => {
                io::Error::other(got.clone())
            }
            err => err.into(),
        })?;
        let mut out = Vec::with_capacity(count.min(MAX_PREALLOC_CELLS));
        for _ in 0..count {
            let line = self.read_reply()?;
            let cell: CellLine = serde_json::from_str(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            out.push(cell);
        }
        Ok(out)
    }

    /// Fetch a raw-cells digest: the matching cells (always in
    /// canonical order) plus the accepted-record counter observed under
    /// the same sync barrier. This is the fleet coordinator's fan-out
    /// primitive — one round-trip yields a self-consistent
    /// (cells, accepted) pair per node. The request carries this
    /// client's [`PROTOCOL_VERSION`]; a server that speaks another
    /// version refuses with a typed error instead of replying in a
    /// layout this client would mis-parse.
    pub fn digest_query(&mut self, query: &CellQuery) -> io::Result<(u64, Vec<CellLine>)> {
        let header =
            self.round_trip(&Request::Digest { proto: PROTOCOL_VERSION, query: *query })?;
        let DigestHeader { cells: count, protocol, accepted } = parse_digest_header(&header)
            .map_err(|err| match err {
                // Surface a server-side error reply as-is instead of
                // wrapping it in "malformed header" noise.
                ProtocolError::MalformedReply { ref got, .. } if got.starts_with("{\"error\"") => {
                    io::Error::other(got.clone())
                }
                err => err.into(),
            })?;
        if protocol != PROTOCOL_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "digest rendered under protocol {protocol}, client speaks {PROTOCOL_VERSION}"
                ),
            ));
        }
        let mut out = Vec::with_capacity(count.min(MAX_PREALLOC_CELLS));
        for _ in 0..count {
            let line = self.read_reply()?;
            let cell: CellLine = serde_json::from_str(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            out.push(cell);
        }
        Ok((accepted, out))
    }

    /// Fetch the tiered window-store statistics. Errors with the
    /// server's reply when no spill directory is configured.
    pub fn store_stats(&mut self) -> io::Result<StoreStats> {
        let reply = self.round_trip(&Request::Store)?;
        if reply.starts_with("{\"error\"") {
            return Err(io::Error::other(reply));
        }
        serde_json::from_str(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Fetch the server's protocol version and check it against this
    /// client's [`PROTOCOL_VERSION`].
    pub fn version(&mut self) -> io::Result<u32> {
        let reply = self.round_trip(&Request::Version)?;
        let version: u32 = reply
            .strip_prefix("{\"protocol\":")
            .and_then(|s| s.strip_suffix('}'))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::from(ProtocolError::MalformedReply {
                    expected: "{\"protocol\":N}",
                    got: reply.clone(),
                })
            })?;
        if version != PROTOCOL_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server speaks protocol {version}, client speaks {PROTOCOL_VERSION}"),
            ));
        }
        Ok(version)
    }

    /// Set read/write deadlines on the underlying socket (`None`
    /// clears them). With deadlines a dead or stalled server surfaces
    /// as a timed-out [`io::Error`] instead of a hung client.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        let stream = self.reader.get_ref();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)
    }

    /// Announce a resume session (`hello <session> <epoch>`) and return
    /// the server's cumulative ack — the record index to resume from.
    pub fn hello(&mut self, session: u64, epoch: u64) -> io::Result<u64> {
        let reply = self.round_trip(&Request::Hello { session, epoch })?;
        parse_acked(&reply).map_err(io::Error::from)
    }

    /// Fetch the final ack for a session (`resume <session>`). The
    /// server holds the reply until the session's previous connection
    /// retires, so the returned count is exact, not racing.
    pub fn resume_ack(&mut self, session: u64) -> io::Result<u64> {
        let reply = self.round_trip(&Request::Resume { session })?;
        parse_acked(&reply).map_err(io::Error::from)
    }

    /// Fetch the observability metrics snapshot as raw JSON.
    pub fn metrics_json(&mut self) -> io::Result<String> {
        self.round_trip(&Request::Metrics)
    }

    /// Fetch the per-worker stats line as raw JSON.
    pub fn stats_json(&mut self) -> io::Result<String> {
        self.round_trip(&Request::Stats)
    }

    /// Drain the server and return its final snapshot. Close every data
    /// connection first: the drain force-closes other connections, and
    /// any bytes still queued on their sockets are discarded by the OS.
    pub fn shutdown(&mut self) -> io::Result<LiveSnapshot> {
        let reply = self.round_trip(&Request::Shutdown)?;
        serde_json::from_str(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// A data-only binary-mode connection to a [`crate::LiveServer`].
///
/// Sends the [`crate::frame`] preamble on connect and then encodes each
/// record as one length-prefixed frame into a buffered writer. Binary
/// connections carry no commands — pair with a [`LiveClient`] control
/// connection for `snapshot` / `shutdown` round-trips.
pub struct BinarySender {
    out: BufWriter<TcpStream>,
}

impl BinarySender {
    /// Connect and negotiate binary mode.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<BinarySender> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut out = BufWriter::with_capacity(1 << 18, stream);
        out.write_all(&preamble())?;
        Ok(BinarySender { out })
    }

    /// Connect in binary mode with a resume session: the preamble's
    /// hello flag plus the fixed-size hello block, answered by one
    /// `{"acked":N}` line before any frames flow. Returns the sender
    /// and the record index to resume from.
    pub fn connect_resume<A: ToSocketAddrs>(
        addr: A,
        session: u64,
        epoch: u64,
        io_timeout: Option<Duration>,
    ) -> io::Result<(BinarySender, u64)> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        let mut ack_reader = BufReader::new(stream.try_clone()?);
        let mut out = BufWriter::with_capacity(1 << 18, stream);
        out.write_all(&preamble_with_hello())?;
        out.write_all(&hello_block(session, epoch))?;
        out.flush()?;
        let mut line = String::new();
        if ack_reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed during hello"));
        }
        let acked = parse_acked(line.trim_end()).map_err(io::Error::from)?;
        Ok((BinarySender { out }, acked))
    }

    /// Enqueue one record (buffered; no response).
    pub fn send(&mut self, record: &LiveRecord) -> io::Result<()> {
        self.out.write_all(&encode_frame(record))
    }

    /// Flush buffered frames to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Flush and close the connection.
    pub fn finish(mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Reconnect/backoff knobs for [`replay_with_resume`]. Backoff is
/// exponential with deterministic jitter (seeded, so chaos runs
/// replay identically), and `io_timeout` puts read/write deadlines on
/// every data connection so a dead server fails fast instead of
/// hanging the replay.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Consecutive no-progress failures tolerated before giving up.
    pub max_attempts: u32,
    /// First backoff; doubles per consecutive failure.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Jitter seed — same seed, same sleep schedule.
    pub seed: u64,
    /// Read/write deadline on data connections (`None` = never time out).
    pub io_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            seed: 0x9E37_79B9_7F4A_7C15,
            io_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// SplitMix64 step — the standard 64-bit mixer, deterministic jitter
/// without pulling in an RNG crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (1-based): exponential
    /// from `base_backoff`, capped at `max_backoff`, jittered into
    /// [50%, 100%] so synchronized clients fan out. Deterministic in
    /// (`seed`, `salt`, `attempt`).
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self.base_backoff.saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(self.max_backoff);
        let mut state = self.seed ^ salt.wrapping_mul(0xA24B_AED4_963E_E407) ^ u64::from(attempt);
        let jitter = splitmix64(&mut state) % 50; // percent to shave off
        capped.mul_f64(1.0 - jitter as f64 / 100.0)
    }
}

/// The payload [`replay_with_resume`] drives: pre-rendered JSONL lines
/// (the line wire's record format lives outside this crate) or records
/// for the binary frame wire.
#[derive(Clone, Copy)]
pub enum ResumeInput<'a> {
    /// JSONL record lines, one record each, no trailing newline.
    Lines(&'a [String]),
    /// Records encoded as length-prefixed binary frames.
    Records(&'a [LiveRecord]),
}

impl ResumeInput<'_> {
    /// Records in the payload.
    pub fn len(&self) -> usize {
        match self {
            ResumeInput::Lines(lines) => lines.len(),
            ResumeInput::Records(records) => records.len(),
        }
    }

    /// True when the payload holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a [`replay_with_resume`] run did: how many connections it took,
/// which chaos faults fired, and the final cumulative ack (equal to
/// `total` on success).
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct ResumeReport {
    /// Records in the input.
    pub total: u64,
    /// Final cumulative server ack.
    pub acked: u64,
    /// Connections opened (first + reconnects).
    pub connections: u32,
    /// Reconnects after the first connection.
    pub reconnects: u32,
    /// Chaos-injected clean disconnects.
    pub injected_disconnects: u32,
    /// Chaos-injected torn (mid-record) cuts.
    pub injected_torn: u32,
    /// Chaos-injected stalls.
    pub injected_stalls: u32,
}

/// One live data connection of either wire, with its resume session
/// already negotiated.
enum ResumeConn {
    Jsonl(LiveClient),
    Binary(BinarySender),
}

impl ResumeConn {
    fn open<A: ToSocketAddrs>(
        addr: &A,
        session: u64,
        epoch: u64,
        input: ResumeInput<'_>,
        policy: &RetryPolicy,
    ) -> io::Result<(ResumeConn, u64)> {
        match input {
            ResumeInput::Lines(_) => {
                let mut client = LiveClient::connect(addr)?;
                client.set_io_timeout(policy.io_timeout)?;
                let acked = client.hello(session, epoch)?;
                Ok((ResumeConn::Jsonl(client), acked))
            }
            ResumeInput::Records(_) => {
                let (sender, acked) =
                    BinarySender::connect_resume(addr, session, epoch, policy.io_timeout)?;
                Ok((ResumeConn::Binary(sender), acked))
            }
        }
    }

    fn send(&mut self, input: ResumeInput<'_>, idx: u64) -> io::Result<()> {
        match (self, input) {
            (ResumeConn::Jsonl(client), ResumeInput::Lines(lines)) => {
                client.send_line(&lines[idx as usize])
            }
            (ResumeConn::Binary(sender), ResumeInput::Records(records)) => {
                sender.send(&records[idx as usize])
            }
            _ => Err(io::Error::other("resume wire/input mismatch")),
        }
    }

    /// Write the first half of record `idx`'s wire bytes and flush —
    /// a deterministic torn tail for chaos runs. The server must leave
    /// the fragment unconsumed so the reconnect replays it whole.
    fn send_torn(&mut self, input: ResumeInput<'_>, idx: u64) -> io::Result<()> {
        match (self, input) {
            (ResumeConn::Jsonl(client), ResumeInput::Lines(lines)) => {
                let bytes = lines[idx as usize].as_bytes();
                client.writer.write_all(&bytes[..bytes.len() / 2])?;
                client.writer.flush()
            }
            (ResumeConn::Binary(sender), ResumeInput::Records(records)) => {
                let frame = encode_frame(&records[idx as usize]);
                sender.out.write_all(&frame[..frame.len() / 2])?;
                sender.out.flush()
            }
            _ => Err(io::Error::other("resume wire/input mismatch")),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ResumeConn::Jsonl(client) => client.flush(),
            ResumeConn::Binary(sender) => sender.flush(),
        }
    }
}

/// The final ack, fetched on a fresh control connection after the data
/// connection dropped. The server publishes a session's ack only once
/// the owning reader retires (post-sync), and `resume` waits for that —
/// so the generous read deadline here must outlast the server's 10 s
/// hand-off window.
fn ack_after_retire<A: ToSocketAddrs>(addr: &A, session: u64) -> io::Result<u64> {
    let mut control = LiveClient::connect(addr)?;
    control.set_io_timeout(Some(Duration::from_secs(15)))?;
    control.resume_ack(session)
}

/// Replay `input` into a live server with exactly-once resume: every
/// record is applied exactly once even across disconnects, torn
/// frames, stalls and server-side evictions. The ack protocol carries
/// the proof — the server only acks *consumed* records after they are
/// fully applied, and the client always resends from the ack.
///
/// `chaos` injects deterministic client-side wire faults (pass
/// `WireChaos::new(&ChaosPlan::default())` for a fault-free replay).
/// Fault cuts reconnect immediately; genuine errors back off
/// exponentially per `policy` and give up after `policy.max_attempts`
/// consecutive attempts without ack progress.
pub fn replay_with_resume<A: ToSocketAddrs>(
    addr: A,
    session: u64,
    input: ResumeInput<'_>,
    policy: &RetryPolicy,
    chaos: &mut WireChaos,
) -> io::Result<ResumeReport> {
    let total = input.len() as u64;
    let mut report = ResumeReport { total, ..ResumeReport::default() };
    let mut epoch: u64 = 0;
    let mut failures: u32 = 0;
    loop {
        if report.connections > 0 {
            report.reconnects += 1;
        }
        report.connections += 1;
        let opened = ResumeConn::open(&addr, session, epoch, input, policy);
        epoch = epoch.wrapping_add(1);
        let (mut conn, acked) = match opened {
            Ok(pair) => pair,
            Err(e) => {
                failures += 1;
                if failures > policy.max_attempts {
                    return Err(e);
                }
                std::thread::sleep(policy.backoff(failures, session));
                continue;
            }
        };
        report.acked = report.acked.max(acked);
        let mut idx = acked;
        let mut chaos_cut = false;
        let sent: io::Result<()> = loop {
            if idx >= total {
                break conn.flush();
            }
            match chaos.before_record(idx) {
                Some(WireFault::Disconnect) => {
                    // Clean close at a record boundary: flush complete
                    // records, then drop the connection.
                    report.injected_disconnects += 1;
                    chaos_cut = true;
                    break conn.flush();
                }
                Some(WireFault::Torn) => {
                    report.injected_torn += 1;
                    chaos_cut = true;
                    break conn.send_torn(input, idx);
                }
                Some(WireFault::Stall(pause)) => {
                    report.injected_stalls += 1;
                    let _ = conn.flush();
                    std::thread::sleep(pause);
                }
                None => {}
            }
            if let Err(e) = conn.send(input, idx) {
                break Err(e);
            }
            idx += 1;
        };
        // Drop the data connection so the server-side reader retires
        // (sync + ack publish), then read the authoritative ack.
        drop(conn);
        let acked_now = match ack_after_retire(&addr, session) {
            Ok(a) => a,
            Err(e) => {
                failures += 1;
                if failures > policy.max_attempts {
                    return Err(e);
                }
                std::thread::sleep(policy.backoff(failures, session));
                continue;
            }
        };
        let progressed = acked_now > report.acked;
        report.acked = report.acked.max(acked_now);
        if report.acked >= total {
            return Ok(report);
        }
        if chaos_cut || progressed {
            // Intentional cut or real progress: reconnect immediately.
            failures = 0;
        } else {
            failures += 1;
            if failures > policy.max_attempts {
                return Err(sent.err().unwrap_or_else(|| {
                    io::Error::other(format!("resume stuck at {}/{} records", report.acked, total))
                }));
            }
            std::thread::sleep(policy.backoff(failures, session));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let policy = RetryPolicy::default();
        let a = policy.backoff(1, 7);
        let b = policy.backoff(1, 7);
        assert_eq!(a, b, "same (seed, salt, attempt) must sleep identically");
        for attempt in 1..10u32 {
            let d = policy.backoff(attempt, 7);
            assert!(d <= policy.max_backoff, "attempt {attempt}: {d:?} over cap");
            // Jitter shaves at most 50%.
            let floor = policy.base_backoff.mul_f64(0.5);
            assert!(d >= floor.min(policy.max_backoff.mul_f64(0.5)), "attempt {attempt}: {d:?}");
        }
        // Different salts de-synchronize the schedule.
        assert_ne!(policy.backoff(3, 1), policy.backoff(3, 2));
    }

    #[test]
    fn resume_input_reports_length_for_both_wires() {
        let lines = vec!["{}".to_string(); 3];
        assert_eq!(ResumeInput::Lines(&lines).len(), 3);
        assert!(!ResumeInput::Lines(&lines).is_empty());
        let records: Vec<LiveRecord> = Vec::new();
        assert!(ResumeInput::Records(&records).is_empty());
    }
}
