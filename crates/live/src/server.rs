//! The live ingest server: TCP acceptor, per-connection readers, and
//! sharded bounded-queue workers.
//!
//! ## Architecture
//!
//! ```text
//! acceptor ──spawns──▶ reader (per connection)
//!                        │ parse JSONL line (LineParser)
//!                        │ shard = FxHash(group) % workers
//!                        ▼
//!              bounded sync_channel (backpressure)
//!                        ▼
//!                      worker w: WindowRing + OnlineDetector
//!                        │ watermark passes window end
//!                        ▼
//!              closed cells (retained per worker) + episodes
//! ```
//!
//! Every record of a user group flows through exactly one worker (groups
//! are sharded by the deterministic FxHash), and one connection's records
//! arrive in stream order — so per-cell digest insertion order is
//! independent of the worker count, which is what makes live windows
//! bit-identical to the offline [`edgeperf_analysis::StreamingDataset`].
//!
//! Queues are *bounded*: when a worker falls behind, readers block on
//! `send` and TCP backpressure propagates to the client. Memory is
//! bounded by queue capacity + open windows + retained closed windows.
//!
//! ## Wire negotiation
//!
//! A connection's very first bytes pick its wire format. The 8-byte
//! binary preamble (magic `EPB1`, see [`crate::frame`]) switches the
//! connection to length-prefixed binary frames decoded zero-copy from a
//! reusable per-connection buffer; anything else — in particular the
//! `{` opening every JSONL record — leaves it in line mode. Binary
//! connections are data-only (no commands; clients issue `snapshot` /
//! `shutdown` over a separate JSONL connection), and a malformed frame
//! closes the connection after a typed reject, because a corrupt binary
//! stream has no newline to resynchronize on.
//!
//! ## Line protocol
//!
//! Lines starting with `{` are session records (no per-line response —
//! rejects are counted and sampled, never silently dropped). Anything
//! else is a command with a one-line JSON (or `pong`) response:
//!
//! | command    | response |
//! |------------|----------|
//! | `ping`     | `pong` after a round-trip through a worker queue |
//! | `snapshot` | aggregate [`LiveSnapshot`] |
//! | `stats`    | per-worker queue depth / throughput |
//! | `cells`    | `{"cells":N}` then N [`CellLine`] rows |
//! | `metrics`  | the `edgeperf-obs` [`MetricsSnapshot`] as JSON |
//! | `shutdown` | drains and replies with the final snapshot |
//! | `quit`     | closes this connection |

use crate::config::LiveConfig;
use crate::detect::OnlineDetector;
use crate::frame::{parse_preamble, FrameDecoder, FRAME_MAGIC, PREAMBLE_LEN};
use crate::record::{LineParser, LiveRecord};
use crate::window::{CellKey, CellSummary, ClosedWindow, WindowRing};
use edgeperf_analysis::{DegradationMetric, FxHasher, GroupKey, TemporalClass};
use edgeperf_core::EdgeperfError;
use edgeperf_obs::{HeartbeatBoard, Metrics};
use edgeperf_routing::{PopId, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::io::{BufRead, BufReader, Cursor, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Aggregate server state, as served by `snapshot` and returned on drain.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LiveSnapshot {
    /// True only for the final snapshot after a clean drain.
    #[serde(default)]
    pub drained: bool,
    /// Worker threads.
    pub workers: u64,
    /// Records ingested into windows.
    pub accepted: u64,
    /// Lines rejected (parse errors + late records).
    pub rejected: u64,
    /// Of the rejected, records behind the watermark (`ingest.reject.late`).
    pub late: u64,
    /// Distinct preferred-route user groups observed.
    pub groups: u64,
    /// Windows closed (summarized) so far.
    pub windows_closed: u64,
    /// Windows currently open across workers.
    pub open_windows: u64,
    /// Confident MinRTT degradation events.
    pub events_minrtt: u64,
    /// Confident HDratio degradation events.
    pub events_hdratio: u64,
    /// Degradation episodes opened.
    pub episodes_opened: u64,
    /// Degradation episodes currently open.
    pub episodes_open: u64,
    /// Reject counts by typed reason.
    #[serde(default)]
    pub reject_reasons: Vec<ReasonCount>,
    /// MinRTT temporal-class histogram over groups.
    #[serde(default)]
    pub classes_minrtt: Vec<ClassCount>,
}

/// One `ingest.reject.<reason>` tally.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReasonCount {
    /// Stable reason label ([`EdgeperfError::reason`]).
    pub reason: String,
    /// Rejected lines with this reason.
    pub count: u64,
}

/// One temporal-class tally.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassCount {
    /// Class label ([`TemporalClass::label`]).
    pub class: String,
    /// Groups currently in this class.
    pub groups: u64,
}

/// One closed cell as served by the `cells` command — flat wire form of
/// ([`CellKey`], [`CellSummary`]) with full `f64` round-trip precision
/// (Rust's shortest-round-trip float formatting), so bit-identity can be
/// asserted across the wire.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CellLine {
    /// Window index.
    pub window: u32,
    /// Serving PoP.
    pub pop: u16,
    /// Client prefix base address.
    pub prefix_base: u32,
    /// Client prefix length.
    pub prefix_len: u8,
    /// Client country id.
    pub country: u16,
    /// Client continent id.
    pub continent: u8,
    /// Route rank (0 = preferred).
    pub rank: u8,
    /// Relationship label (`private` / `public` / `transit`).
    pub relationship: String,
    /// AS path longer than the preferred route's.
    pub longer_path: bool,
    /// More prepended than the preferred route.
    pub more_prepended: bool,
    /// Sessions recorded.
    pub n: u64,
    /// Sessions with an HDratio.
    pub n_tested: u64,
    /// Traffic bytes.
    pub bytes: u64,
    /// Median MinRTT (ms).
    pub min_rtt_p50: f64,
    /// Price–Bonett variance of the MinRTT median.
    pub min_rtt_var: Option<f64>,
    /// Median HDratio.
    pub hdratio_p50: Option<f64>,
    /// Price–Bonett variance of the HDratio median.
    pub hdratio_var: Option<f64>,
}

impl CellLine {
    /// Flatten a closed cell for the wire.
    pub fn new(window: u32, key: &CellKey, s: &CellSummary) -> CellLine {
        let (group, rank) = key;
        CellLine {
            window,
            pop: group.pop.0,
            prefix_base: group.prefix.base,
            prefix_len: group.prefix.len,
            country: group.country,
            continent: group.continent,
            rank: *rank,
            relationship: s.relationship.label().to_string(),
            longer_path: s.longer_path,
            more_prepended: s.more_prepended,
            n: s.n as u64,
            n_tested: s.n_tested as u64,
            bytes: s.bytes,
            min_rtt_p50: s.min_rtt_p50,
            min_rtt_var: s.min_rtt_var,
            hdratio_p50: s.hdratio_p50,
            hdratio_var: s.hdratio_var,
        }
    }

    /// The cell's group key.
    pub fn group(&self) -> GroupKey {
        GroupKey {
            pop: PopId(self.pop),
            prefix: Prefix::new(self.prefix_base, self.prefix_len),
            country: self.country,
            continent: self.continent,
        }
    }
}

enum WorkerMsg {
    /// A batch of parsed records (readers coalesce up to
    /// [`RECORD_BATCH`] per worker to amortize channel costs).
    Records(Vec<LiveRecord>),
    Ping(Sender<()>),
    Snapshot(Sender<WorkerSnap>),
    Cells(Sender<Vec<CellLine>>),
}

/// Records a reader coalesces per worker before a channel send. Queue
/// capacity is counted in batches, so worst-case queued records per
/// worker is `queue_capacity * RECORD_BATCH`.
const RECORD_BATCH: usize = 64;

/// Point-in-time view of one worker, produced on request or at drain.
#[derive(Debug, Clone, Default)]
struct WorkerSnap {
    processed: u64,
    groups: usize,
    open_windows: usize,
    windows_closed: u64,
    events: [u64; 2],
    episodes_opened: u64,
    episodes_open: usize,
    class_counts_minrtt: [u64; 5],
}

fn class_slot(class: TemporalClass) -> usize {
    match class {
        TemporalClass::Ignored => 0,
        TemporalClass::Uneventful => 1,
        TemporalClass::Continuous => 2,
        TemporalClass::Diurnal => 3,
        TemporalClass::Episodic => 4,
    }
}

const CLASS_LABELS: [&str; 5] = ["ignored", "uneventful", "continuous", "diurnal", "episodic"];

/// State shared by the acceptor, readers, workers and the supervisor.
struct Shared {
    config: LiveConfig,
    /// The actually-bound listen address (resolves `:0` binds) — the
    /// drain wake-up connection must target this, not `config.addr`.
    bound_addr: SocketAddr,
    metrics: Metrics,
    board: HeartbeatBoard,
    draining: AtomicBool,
    supervisor_stop: AtomicBool,
    accepted: AtomicU64,
    rejected: AtomicU64,
    late: AtomicU64,
    queue_depths: Vec<AtomicUsize>,
    reject_reasons: Mutex<BTreeMap<&'static str, u64>>,
    /// Bounded sample of recent reject messages (triage without logs).
    reject_log: Mutex<VecDeque<String>>,
    senders: Mutex<Option<Vec<SyncSender<WorkerMsg>>>>,
    /// Final per-worker reports, filled as workers drain.
    reports: Mutex<Vec<WorkerSnap>>,
    reports_ready: Condvar,
    final_snapshot: Mutex<Option<LiveSnapshot>>,
    conns: Mutex<Vec<(u64, TcpStream)>>,
    conn_seq: AtomicU64,
    reader_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn reject(&self, context: &str, err: &EdgeperfError) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        let reason = err.reason();
        if reason == "late" {
            self.late.fetch_add(1, Ordering::Relaxed);
        }
        self.metrics.counter(&format!("ingest.reject.{reason}")).inc();
        *self.reject_reasons.lock().expect("reject map").entry(reason).or_insert(0) += 1;
        let mut log = self.reject_log.lock().expect("reject log");
        if log.len() >= 256 {
            log.pop_front();
        }
        log.push_back(format!("{context}: {err}"));
    }

    fn snapshot_from(&self, per_worker: &[WorkerSnap], drained: bool) -> LiveSnapshot {
        let mut snap = LiveSnapshot {
            drained,
            workers: self.config.workers as u64,
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            late: self.late.load(Ordering::Relaxed),
            ..LiveSnapshot::default()
        };
        let mut classes = [0u64; 5];
        for w in per_worker {
            snap.groups += w.groups as u64;
            snap.windows_closed += w.windows_closed;
            snap.open_windows += w.open_windows as u64;
            snap.events_minrtt += w.events[0];
            snap.events_hdratio += w.events[1];
            snap.episodes_opened += w.episodes_opened;
            snap.episodes_open += w.episodes_open as u64;
            for (i, c) in w.class_counts_minrtt.iter().enumerate() {
                classes[i] += c;
            }
        }
        snap.reject_reasons = self
            .reject_reasons
            .lock()
            .expect("reject map")
            .iter()
            .map(|(reason, count)| ReasonCount { reason: reason.to_string(), count: *count })
            .collect();
        snap.classes_minrtt = CLASS_LABELS
            .iter()
            .zip(classes)
            .filter(|&(_, n)| n > 0)
            .map(|(label, n)| ClassCount { class: label.to_string(), groups: n })
            .collect();
        snap
    }
}

/// Deterministic group → worker shard (same FxHash as the offline sinks).
fn shard_of(group: &GroupKey, workers: usize) -> usize {
    let mut h = FxHasher::default();
    group.hash(&mut h);
    (h.finish() as usize) % workers
}

/// A running [`LiveServer`]: the bound address plus every thread handle.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound listen address (resolves `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until a client drains the server (the `shutdown` command),
    /// join every thread, and return the final snapshot.
    pub fn join(mut self) -> LiveSnapshot {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for h in self.shared.reader_handles.lock().expect("reader handles").drain(..) {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.supervisor_stop.store(true, Ordering::Release);
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        self.shared.final_snapshot.lock().expect("final snapshot").clone().unwrap_or_default()
    }

    /// Convenience for tests and embedders: issue `shutdown` from here
    /// and join. Returns the final (drained) snapshot.
    pub fn shutdown_and_join(self) -> std::io::Result<LiveSnapshot> {
        let mut client = crate::client::LiveClient::connect(self.addr)?;
        let snap = client.shutdown()?;
        let joined = self.join();
        // Prefer the snapshot the server handed the draining client; the
        // joined one is identical but may be missing if another client
        // raced the drain.
        Ok(if snap.drained { snap } else { joined })
    }
}

/// The live session-ingest server. See the module docs.
pub struct LiveServer;

impl LiveServer {
    /// Validate `config`, bind, and start every thread. The wire format
    /// is supplied by `parser`; pipeline metrics land in `metrics`.
    pub fn start(
        config: LiveConfig,
        parser: Arc<dyn LineParser>,
        metrics: Metrics,
    ) -> Result<ServerHandle, EdgeperfError> {
        config.validate()?;
        let listener = TcpListener::bind(&config.addr).map_err(|e| {
            EdgeperfError::InvalidConfig { field: "addr", message: format!("{}: {e}", config.addr) }
        })?;
        let addr = listener
            .local_addr()
            .map_err(|e| EdgeperfError::InvalidConfig { field: "addr", message: e.to_string() })?;
        let workers = config.workers;
        let shared = Arc::new(Shared {
            bound_addr: addr,
            board: HeartbeatBoard::new(workers),
            metrics,
            draining: AtomicBool::new(false),
            supervisor_stop: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            late: AtomicU64::new(0),
            queue_depths: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
            reject_reasons: Mutex::new(BTreeMap::new()),
            reject_log: Mutex::new(VecDeque::new()),
            senders: Mutex::new(None),
            reports: Mutex::new(Vec::new()),
            reports_ready: Condvar::new(),
            final_snapshot: Mutex::new(None),
            conns: Mutex::new(Vec::new()),
            conn_seq: AtomicU64::new(0),
            reader_handles: Mutex::new(Vec::new()),
            config,
        });

        let mut worker_handles = Vec::with_capacity(workers);
        let mut senders = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = sync_channel(shared.config.queue_capacity);
            senders.push(tx);
            let shared = Arc::clone(&shared);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("live-worker-{w}"))
                    .spawn(move || worker_loop(w, &shared, rx))
                    .expect("spawn worker"),
            );
        }
        *shared.senders.lock().expect("senders") = Some(senders);

        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("live-supervisor".to_string())
                .spawn(move || supervisor_loop(&shared))
                .expect("spawn supervisor")
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            let parser = Arc::clone(&parser);
            std::thread::Builder::new()
                .name("live-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, &shared, parser))
                .expect("spawn acceptor")
        };

        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
            supervisor: Some(supervisor),
        })
    }
}

fn acceptor_loop(listener: TcpListener, shared: &Arc<Shared>, parser: Arc<dyn LineParser>) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Protocol replies are tiny; without this every command
        // round-trip stalls on Nagle + delayed ACKs (~40 ms).
        let _ = stream.set_nodelay(true);
        let id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conns").push((id, clone));
        }
        let shared_cloned = Arc::clone(shared);
        let parser = Arc::clone(&parser);
        let handle = std::thread::Builder::new()
            .name(format!("live-reader-{id}"))
            .spawn(move || {
                reader_loop(id, stream, &shared_cloned, parser);
                shared_cloned.conns.lock().expect("conns").retain(|(cid, _)| *cid != id);
            })
            .expect("spawn reader");
        shared.reader_handles.lock().expect("reader handles").push(handle);
    }
}

fn reader_loop(id: u64, stream: TcpStream, shared: &Arc<Shared>, parser: Arc<dyn LineParser>) {
    let Ok(mut out) = stream.try_clone() else { return };
    let senders = shared.senders.lock().expect("senders").clone();
    let Some(senders) = senders else { return };
    // Wire negotiation: sniff the first bytes against the binary magic.
    // The comparison is incremental, so a JSONL client's `{` (or any
    // other first byte) commits to line mode after one read — we never
    // wait for 8 bytes that will not come.
    let mut pre = [0u8; PREAMBLE_LEN];
    let mut got = 0usize;
    let mut magic_possible = true;
    while magic_possible && got < PREAMBLE_LEN {
        match (&stream).read(&mut pre[got..]) {
            Ok(0) => break,
            Ok(n) => {
                got += n;
                let cmp = got.min(FRAME_MAGIC.len());
                magic_possible = pre[..cmp] == FRAME_MAGIC[..cmp];
            }
            Err(_) => return,
        }
    }
    if magic_possible && got == PREAMBLE_LEN {
        match parse_preamble(&pre) {
            Ok(body_len) => binary_reader_loop(id, stream, body_len, shared, senders),
            Err(err) => shared.reject(&format!("conn {id} preamble"), &err),
        }
        return;
    }
    // Line mode: hand the already-consumed sniff bytes back to the
    // parser by chaining them in front of the socket.
    let reader = BufReader::with_capacity(
        shared.config.read_buffer_bytes,
        Cursor::new(pre[..got].to_vec()).chain(stream),
    );
    line_reader_loop(id, reader, &mut out, shared, parser, senders);
}

/// Binary-mode connection: decode length-prefixed frames from a
/// reusable buffer and shard them exactly like parsed JSONL records.
/// Data-only — the first malformed frame (or EOF) ends the connection.
fn binary_reader_loop(
    id: u64,
    mut stream: TcpStream,
    body_len: usize,
    shared: &Arc<Shared>,
    senders: Vec<SyncSender<WorkerMsg>>,
) {
    let workers = senders.len();
    let frames_counter = shared.metrics.counter("ingest.frames");
    let accepted_counter = shared.metrics.counter("live.accepted");
    let mut decoder = FrameDecoder::new(body_len, shared.config.read_buffer_bytes);
    let mut frame_no = 0u64;
    let mut batches: Vec<Vec<LiveRecord>> = (0..workers).map(|_| Vec::new()).collect();
    'conn: loop {
        let writable = decoder.writable();
        let writable_len = writable.len();
        let n = match stream.read(writable) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        decoder.advance(n, writable_len);
        loop {
            match decoder.next_record() {
                Ok(Some(rec)) => {
                    frame_no += 1;
                    frames_counter.inc();
                    accepted_counter.inc();
                    let w = shard_of(&rec.group, workers);
                    batches[w].push(rec);
                    if batches[w].len() >= RECORD_BATCH
                        && !flush_batch(shared, &senders, &mut batches, w)
                    {
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    shared.reject(&format!("conn {id} frame {}", frame_no + 1), &err);
                    break 'conn;
                }
            }
        }
        // About to block on the socket: hand workers everything decoded
        // so far (same invariant as the line path — a quiet connection
        // never strands records in a partial batch).
        for w in 0..workers {
            if !flush_batch(shared, &senders, &mut batches, w) {
                break 'conn;
            }
        }
    }
    for w in 0..workers {
        if !flush_batch(shared, &senders, &mut batches, w) {
            break;
        }
    }
}

/// JSONL-mode connection: the line protocol (records + commands).
fn line_reader_loop<R: Read>(
    id: u64,
    mut reader: BufReader<R>,
    out: &mut TcpStream,
    shared: &Arc<Shared>,
    parser: Arc<dyn LineParser>,
    mut senders: Vec<SyncSender<WorkerMsg>>,
) {
    let workers = senders.len();
    let lines_counter = shared.metrics.counter("ingest.lines");
    let accepted_counter = shared.metrics.counter("live.accepted");
    let mut line = String::new();
    let mut line_no = 0u64;
    let mut rr = id as usize;
    let mut batches: Vec<Vec<LiveRecord>> = (0..workers).map(|_| Vec::new()).collect();
    'conn: loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with('{') {
            line_no += 1;
            lines_counter.inc();
            match parser.parse(trimmed) {
                Ok(rec) => {
                    accepted_counter.inc();
                    let w = shard_of(&rec.group, workers);
                    batches[w].push(rec);
                    if batches[w].len() >= RECORD_BATCH
                        && !flush_batch(shared, &senders, &mut batches, w)
                    {
                        break 'conn;
                    }
                }
                Err(err) => shared.reject(&format!("conn {id} line {line_no}"), &err),
            }
            // About to block on the socket: hand workers everything
            // parsed so far, so a quiet connection never strands
            // records in a partial batch (snapshots taken while the
            // sender idles must observe them).
            if reader.buffer().is_empty() {
                for w in 0..workers {
                    if !flush_batch(shared, &senders, &mut batches, w) {
                        break 'conn;
                    }
                }
            }
            continue;
        }
        // Commands observe everything this connection sent before them.
        for w in 0..workers {
            if !flush_batch(shared, &senders, &mut batches, w) {
                break 'conn;
            }
        }
        let reply = match trimmed {
            "ping" => {
                rr = (rr + 1) % workers;
                let (tx, rx) = channel();
                shared.queue_depths[rr].fetch_add(1, Ordering::Relaxed);
                if senders[rr].send(WorkerMsg::Ping(tx)).is_ok() {
                    let _ = rx.recv();
                    "pong".to_string()
                } else {
                    "gone".to_string()
                }
            }
            "snapshot" => match query_workers(shared, &senders, WorkerMsg::Snapshot) {
                Some(per_worker) => {
                    let snap = shared.snapshot_from(&per_worker, false);
                    serde_json::to_string(&snap).expect("snapshot serializes")
                }
                None => "{\"error\":\"draining\"}".to_string(),
            },
            "stats" => match query_workers(shared, &senders, WorkerMsg::Snapshot) {
                Some(per_worker) => render_stats(shared, &per_worker),
                None => "{\"error\":\"draining\"}".to_string(),
            },
            "cells" => {
                let mut all: Vec<CellLine> = Vec::new();
                for (w, tx) in senders.iter().enumerate() {
                    let (reply_tx, reply_rx) = channel();
                    shared.queue_depths[w].fetch_add(1, Ordering::Relaxed);
                    if tx.send(WorkerMsg::Cells(reply_tx)).is_ok() {
                        if let Ok(cells) = reply_rx.recv() {
                            all.extend(cells);
                        }
                    }
                }
                let mut out = format!("{{\"cells\":{}}}\n", all.len());
                for cell in &all {
                    out.push_str(&serde_json::to_string(cell).expect("cell serializes"));
                    out.push('\n');
                }
                out.pop();
                out
            }
            "metrics" => {
                serde_json::to_string(&shared.metrics.snapshot()).expect("metrics serialize")
            }
            "shutdown" => {
                let snap = drain(shared, id, std::mem::take(&mut senders));
                let reply = serde_json::to_string(&snap).expect("snapshot serializes");
                let _ = out.write_all(reply.as_bytes());
                let _ = out.write_all(b"\n");
                break;
            }
            "quit" => break,
            other => format!("{{\"error\":\"unknown command {}\"}}", other.replace('"', "'")),
        };
        if out.write_all(reply.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
            break;
        }
    }
    // EOF / cut connection: hand the workers whatever is still batched.
    // (After `shutdown`, every batch is already empty and `senders` was
    // taken, so this is a no-op.)
    for w in 0..workers {
        if !flush_batch(shared, &senders, &mut batches, w) {
            break;
        }
    }
}

/// Push a reader's coalesced batch for worker `w` onto its queue,
/// keeping `queue_depths` (counted in records) in sync. `false` when the
/// worker side is gone (server draining).
fn flush_batch(
    shared: &Shared,
    senders: &[SyncSender<WorkerMsg>],
    batches: &mut [Vec<LiveRecord>],
    w: usize,
) -> bool {
    if batches[w].is_empty() {
        return true;
    }
    let batch = std::mem::take(&mut batches[w]);
    let len = batch.len();
    shared.queue_depths[w].fetch_add(len, Ordering::Relaxed);
    if senders[w].send(WorkerMsg::Records(batch)).is_err() {
        shared.queue_depths[w].fetch_sub(len, Ordering::Relaxed);
        return false;
    }
    true
}

/// Send `make(reply)` to every worker and collect the responses. `None`
/// when the server is already draining.
fn query_workers(
    shared: &Shared,
    senders: &[SyncSender<WorkerMsg>],
    make: fn(Sender<WorkerSnap>) -> WorkerMsg,
) -> Option<Vec<WorkerSnap>> {
    let mut out = Vec::with_capacity(senders.len());
    for (w, tx) in senders.iter().enumerate() {
        let (reply_tx, reply_rx) = channel();
        shared.queue_depths[w].fetch_add(1, Ordering::Relaxed);
        if tx.send(make(reply_tx)).is_err() {
            return None;
        }
        out.push(reply_rx.recv().ok()?);
    }
    Some(out)
}

fn render_stats(shared: &Shared, per_worker: &[WorkerSnap]) -> String {
    let rows: Vec<String> = per_worker
        .iter()
        .enumerate()
        .map(|(w, s)| {
            format!(
                "{{\"worker\":{w},\"processed\":{},\"queue_depth\":{},\"groups\":{},\
                 \"open_windows\":{},\"windows_closed\":{}}}",
                s.processed,
                shared.queue_depths[w].load(Ordering::Relaxed),
                s.groups,
                s.open_windows,
                s.windows_closed,
            )
        })
        .collect();
    format!("{{\"workers\":[{}]}}", rows.join(","))
}

/// Drain: stop the acceptor, cut other connections, drop every sender,
/// wait for the workers to flush, and build the final snapshot.
fn drain(shared: &Arc<Shared>, self_id: u64, senders: Vec<SyncSender<WorkerMsg>>) -> LiveSnapshot {
    let first = !shared.draining.swap(true, Ordering::AcqRel);
    if first {
        // Wake the acceptor so it observes the flag.
        let _ = TcpStream::connect(shared.bound_addr);
        // Cut every other connection; their readers drain what they have
        // already enqueued, then exit and release their senders.
        for (cid, conn) in shared.conns.lock().expect("conns").iter() {
            if *cid != self_id {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        *shared.senders.lock().expect("senders") = None;
    }
    drop(senders);
    let workers = shared.config.workers;
    let mut reports = shared.reports.lock().expect("reports");
    while reports.len() < workers {
        reports = shared.reports_ready.wait(reports).expect("reports wait");
    }
    let snap = shared.snapshot_from(&reports, true);
    drop(reports);
    shared.supervisor_stop.store(true, Ordering::Release);
    let mut slot = shared.final_snapshot.lock().expect("final snapshot");
    if slot.is_none() {
        *slot = Some(snap.clone());
    }
    snap
}

struct WorkerState {
    ring: WindowRing,
    detector: OnlineDetector,
    closed: BTreeMap<u32, Vec<(CellKey, CellSummary)>>,
    processed: u64,
    windows_closed: u64,
}

impl WorkerState {
    fn snap(&self) -> WorkerSnap {
        let mut class_counts_minrtt = [0u64; 5];
        for (_, class) in self.detector.classes(DegradationMetric::MinRtt) {
            class_counts_minrtt[class_slot(class)] += 1;
        }
        WorkerSnap {
            processed: self.processed,
            groups: self.detector.group_count(),
            open_windows: self.ring.open_windows(),
            windows_closed: self.windows_closed,
            events: [
                self.detector.event_count(DegradationMetric::MinRtt),
                self.detector.event_count(DegradationMetric::HdRatio),
            ],
            episodes_opened: self.detector.episodes_opened(),
            episodes_open: self.detector.episodes_open(),
            class_counts_minrtt,
        }
    }
}

fn worker_loop(w: usize, shared: &Arc<Shared>, rx: Receiver<WorkerMsg>) {
    let cfg = &shared.config;
    let mut state = WorkerState {
        ring: WindowRing::new(cfg.window_ms, cfg.lateness_ms),
        detector: OnlineDetector::new(
            cfg.analysis,
            cfg.minrtt_threshold_ms,
            cfg.hdratio_threshold,
            cfg.retention_windows,
        ),
        closed: BTreeMap::new(),
        processed: 0,
        windows_closed: 0,
    };
    let close_hist = shared.metrics.histogram("live.window_close_ns");
    let depth_hist = shared.metrics.histogram("live.queue_depth");
    let depth_gauge = shared.metrics.gauge(&format!("live.worker.{w}.queue_depth"));
    let processed_gauge = shared.metrics.gauge(&format!("live.worker.{w}.processed"));
    let windows_counter = shared.metrics.counter("live.windows.closed");
    let events_minrtt = shared.metrics.counter("live.events.minrtt");
    let events_hdratio = shared.metrics.counter("live.events.hdratio");
    let episodes_opened = shared.metrics.counter("live.episodes.opened");
    let episodes_closed = shared.metrics.counter("live.episodes.closed");
    let counters =
        (&windows_counter, &events_minrtt, &events_hdratio, &episodes_opened, &episodes_closed);

    while let Ok(msg) = rx.recv() {
        let cost = match &msg {
            WorkerMsg::Records(batch) => batch.len(),
            _ => 1,
        };
        let depth = shared.queue_depths[w].fetch_sub(cost, Ordering::Relaxed);
        let token = shared.board.begin(w, state.processed as usize & 0xFFFF);
        match msg {
            WorkerMsg::Records(batch) => {
                let mut accepted = 0u64;
                for rec in batch {
                    state.processed += 1;
                    match state.ring.push(&rec) {
                        Ok(closed) => {
                            accepted += 1;
                            for cw in closed {
                                handle_close(shared, &mut state, cw, &close_hist, counters);
                            }
                        }
                        Err(err) => shared.reject(&format!("worker {w}"), &err),
                    }
                }
                shared.accepted.fetch_add(accepted, Ordering::Relaxed);
                depth_hist.record(depth as u64);
                depth_gauge.set(depth as f64);
                processed_gauge.set(state.processed as f64);
            }
            WorkerMsg::Ping(reply) => {
                let _ = reply.send(());
            }
            WorkerMsg::Snapshot(reply) => {
                let _ = reply.send(state.snap());
            }
            WorkerMsg::Cells(reply) => {
                let cells = state
                    .closed
                    .iter()
                    .flat_map(|(window, cells)| {
                        cells.iter().map(|(key, s)| CellLine::new(*window, key, s))
                    })
                    .collect();
                let _ = reply.send(cells);
            }
        }
        shared.board.finish(w);
        let _ = token;
    }

    // Drain: every sender is gone. Flush the remaining windows, then
    // publish the final report.
    for cw in state.ring.force_close() {
        handle_close(shared, &mut state, cw, &close_hist, counters);
    }
    processed_gauge.set(state.processed as f64);
    depth_gauge.set(0.0);
    let mut reports = shared.reports.lock().expect("reports");
    reports.push(state.snap());
    shared.reports_ready.notify_all();
}

type CloseCounters<'a> = (
    &'a edgeperf_obs::Counter,
    &'a edgeperf_obs::Counter,
    &'a edgeperf_obs::Counter,
    &'a edgeperf_obs::Counter,
    &'a edgeperf_obs::Counter,
);

fn handle_close(
    shared: &Shared,
    state: &mut WorkerState,
    cw: ClosedWindow,
    close_hist: &edgeperf_obs::Histogram,
    (windows, ev_minrtt, ev_hd, ep_opened, ep_closed): CloseCounters<'_>,
) {
    close_hist.time(|| {
        let before = [
            state.detector.event_count(DegradationMetric::MinRtt),
            state.detector.event_count(DegradationMetric::HdRatio),
        ];
        let changes = state.detector.observe(&cw);
        ev_minrtt.add(state.detector.event_count(DegradationMetric::MinRtt) - before[0]);
        ev_hd.add(state.detector.event_count(DegradationMetric::HdRatio) - before[1]);
        for c in &changes {
            if c.opened {
                ep_opened.inc();
            } else {
                ep_closed.inc();
            }
        }
        state.windows_closed += 1;
        windows.inc();
        state.closed.insert(cw.index, cw.cells);
        while state.closed.len() > shared.config.retention_windows {
            state.closed.pop_first();
        }
    });
}

fn supervisor_loop(shared: &Arc<Shared>) {
    let deadline = Duration::from_millis(shared.config.slow_worker_ms);
    let tick = Duration::from_millis((shared.config.slow_worker_ms / 4).clamp(10, 500));
    let slow_gauge = shared.metrics.gauge("live.workers.slow");
    let slow_marks = shared.metrics.counter("live.workers.slow_marks");
    let mut last_slow = 0usize;
    while !shared.supervisor_stop.load(Ordering::Acquire) {
        let slow = shared.board.overdue(deadline).len();
        slow_gauge.set(slow as f64);
        if slow > last_slow {
            slow_marks.add((slow - last_slow) as u64);
        }
        last_slow = slow;
        std::thread::sleep(tick);
    }
    slow_gauge.set(0.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_is_deterministic_and_group_stable() {
        let g1 = GroupKey {
            pop: PopId(1),
            prefix: Prefix::new(0x0A000000, 16),
            country: 2,
            continent: 1,
        };
        let g2 = GroupKey { pop: PopId(2), ..g1 };
        assert_eq!(shard_of(&g1, 4), shard_of(&g1, 4));
        // Different worker counts re-shard, but stay in range.
        for workers in 1..8 {
            assert!(shard_of(&g1, workers) < workers);
            assert!(shard_of(&g2, workers) < workers);
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = LiveSnapshot {
            drained: true,
            workers: 4,
            accepted: 100,
            rejected: 3,
            late: 1,
            groups: 7,
            windows_closed: 12,
            open_windows: 2,
            events_minrtt: 5,
            events_hdratio: 1,
            episodes_opened: 2,
            episodes_open: 1,
            reject_reasons: vec![ReasonCount { reason: "late".to_string(), count: 1 }],
            classes_minrtt: vec![ClassCount { class: "episodic".to_string(), groups: 2 }],
        };
        let json = serde_json::to_string(&snap).unwrap();
        let back: LiveSnapshot = serde_json::from_str(&json).unwrap();
        assert!(back.drained);
        assert_eq!(back.accepted, 100);
        assert_eq!(back.late, 1);
        assert_eq!(back.reject_reasons.len(), 1);
        assert_eq!(back.reject_reasons[0].reason, "late");
        assert_eq!(back.classes_minrtt[0].groups, 2);
    }

    #[test]
    fn cell_line_preserves_f64_bits_through_json() {
        let group = GroupKey {
            pop: PopId(3),
            prefix: Prefix::new(0x0A0B0000, 16),
            country: 9,
            continent: 4,
        };
        let line = CellLine {
            window: 42,
            pop: group.pop.0,
            prefix_base: group.prefix.base,
            prefix_len: group.prefix.len,
            country: group.country,
            continent: group.continent,
            rank: 1,
            relationship: "transit".to_string(),
            longer_path: true,
            more_prepended: false,
            n: 1234,
            n_tested: 900,
            bytes: 5_000_000,
            min_rtt_p50: 42.123456789012345,
            min_rtt_var: Some(0.012_345_678_901_234_568),
            hdratio_p50: Some(0.987654321098765),
            hdratio_var: None,
        };
        let json = serde_json::to_string(&line).unwrap();
        let back: CellLine = serde_json::from_str(&json).unwrap();
        assert_eq!(back, line);
        assert_eq!(back.min_rtt_p50.to_bits(), line.min_rtt_p50.to_bits());
        assert_eq!(back.min_rtt_var.unwrap().to_bits(), line.min_rtt_var.unwrap().to_bits());
        assert_eq!(back.group(), group);
    }
}
