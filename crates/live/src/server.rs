//! The live ingest server: TCP acceptor, per-connection readers, and
//! sharded workers fed through lock-free SPSC lanes.
//!
//! ## Architecture
//!
//! ```text
//! acceptor ──spawns──▶ reader (per connection)
//!                        │ parse JSONL line / decode binary frame
//!                        │ shard = FxHash(group) % workers
//!                        ▼
//!        SPSC lane (reader, worker): bounded batch ring ──▶ worker w
//!                        ▲                                   │
//!                        └───── recycle ring (spent Vecs) ───┘
//! ```
//!
//! Each connection owns one [`crate::queue::spsc`] lane per worker: a
//! bounded single-producer/single-consumer batch ring paired with a
//! reverse ring that carries spent batch `Vec`s back to the reader, so
//! steady-state ingest takes no locks and performs zero allocations per
//! batch. When a lane fills, the reader spins briefly then parks until
//! the worker frees a slot — the PR-5 "block, never drop" backpressure
//! semantics, without the `sync_channel` lock hand-off that made worker
//! counts *anti*-scale (see `queue.rs` docs and `BENCH_live.json`).
//!
//! Every record of a user group flows through exactly one worker (groups
//! are sharded by the deterministic FxHash), and one connection's records
//! arrive in stream order — the per-lane FIFO preserves it — so per-cell
//! digest insertion order is independent of the worker count, which is
//! what makes live windows bit-identical to the offline
//! [`edgeperf_analysis::StreamingDataset`].
//!
//! ## Control plane
//!
//! Commands (`ping`, `snapshot`, …) bypass the record lanes entirely:
//! each worker owns an unbounded mpsc control channel drained once per
//! scheduling round, so a full data ring never blocks a `ping`. Commands
//! that report state still observe everything their own connection sent
//! first — the reader flushes its partial batches and waits until each
//! lane's applied counter catches up to its pushed counter.
//!
//! ## Statistics
//!
//! Accept/reject tallies are sharded into per-reader and per-worker
//! cells (relaxed atomic counters plus a rarely-touched reason map) and
//! rolled up only when a snapshot is taken. A reader folds its cell into
//! a retired-total *before* closing its lanes, and workers exit only
//! after every lane is closed and drained — so the final drained
//! snapshot is exact, not approximate.
//!
//! ## Wire negotiation
//!
//! A connection's very first bytes pick its wire format. The 8-byte
//! binary preamble (magic `EPB1`, see [`crate::frame`]) switches the
//! connection to length-prefixed binary frames decoded zero-copy from a
//! reusable per-connection buffer; anything else — in particular the
//! `{` opening every JSONL record — leaves it in line mode. Binary
//! connections are data-only (no commands; clients issue `snapshot` /
//! `shutdown` over a separate JSONL connection), and a malformed frame
//! closes the connection after a typed reject, because a corrupt binary
//! stream has no newline to resynchronize on.
//!
//! ## Line protocol
//!
//! Lines starting with `{` are session records (no per-line response —
//! rejects are counted and sampled, never silently dropped). Anything
//! else is a command line, parsed and rendered exclusively by the typed
//! [`crate::protocol`] module (see its docs for the command table and
//! the compatibility contract). The reader loop here owns *serving* a
//! [`crate::protocol::Request`], never its wire syntax.
//!
//! ## Tiered window store
//!
//! With [`LiveConfig::spill_dir`] set, a closed window evicted past the
//! RAM retention horizon is spilled into the
//! [`crate::store::SegmentStore`] before eviction — every closed window
//! is always queryable, from RAM or from disk. `cells` range queries
//! merge both tiers, deduplicating windows present in each (the copies
//! are bit-identical by construction), and a background compactor
//! thread folds small spilled segments into larger time-sorted ones.

use crate::config::LiveConfig;
use crate::detect::OnlineDetector;
use crate::frame::{
    parse_hello, parse_preamble, FrameDecoder, FRAME_MAGIC, HELLO_LEN, PREAMBLE_LEN,
};
use crate::protocol::{
    CellQuery, ProtocolError, Request, Response, WorkerStatsLine, PROTOCOL_VERSION,
};
use crate::queue::{spsc, Consumer, Producer, Waiter};
use crate::record::{LineParser, LiveRecord};
use crate::store::{cell_line, SegmentStore, SpillOutcome};
use crate::window::{CellKey, CellSummary, ClosedWindow, WindowRing};
use edgeperf_analysis::{DegradationMetric, FxHasher, GroupKey, TemporalClass};
use edgeperf_core::EdgeperfError;
use edgeperf_obs::{HeartbeatBoard, Metrics};
use edgeperf_routing::{PopId, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::io::{BufRead, BufReader, Cursor, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Aggregate server state, as served by `snapshot` and returned on drain.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LiveSnapshot {
    /// True only for the final snapshot after a clean drain.
    #[serde(default)]
    pub drained: bool,
    /// Worker threads.
    pub workers: u64,
    /// Records ingested into windows.
    pub accepted: u64,
    /// Lines rejected (parse errors + late records).
    pub rejected: u64,
    /// Of the rejected, records behind the watermark (`ingest.reject.late`).
    pub late: u64,
    /// Distinct preferred-route user groups observed.
    pub groups: u64,
    /// Windows closed (summarized) so far.
    pub windows_closed: u64,
    /// Windows currently open across workers.
    pub open_windows: u64,
    /// Confident MinRTT degradation events.
    pub events_minrtt: u64,
    /// Confident HDratio degradation events.
    pub events_hdratio: u64,
    /// Degradation episodes opened.
    pub episodes_opened: u64,
    /// Degradation episodes currently open.
    pub episodes_open: u64,
    /// Reject counts by typed reason.
    #[serde(default)]
    pub reject_reasons: Vec<ReasonCount>,
    /// MinRTT temporal-class histogram over groups.
    #[serde(default)]
    pub classes_minrtt: Vec<ClassCount>,
}

/// One `ingest.reject.<reason>` tally.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReasonCount {
    /// Stable reason label ([`EdgeperfError::reason`]).
    pub reason: String,
    /// Rejected lines with this reason.
    pub count: u64,
}

/// One temporal-class tally.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassCount {
    /// Class label ([`TemporalClass::label`]).
    pub class: String,
    /// Groups currently in this class.
    pub groups: u64,
}

/// One closed cell as served by the `cells` command — flat wire form of
/// ([`CellKey`], [`CellSummary`]) with full `f64` round-trip precision
/// (Rust's shortest-round-trip float formatting), so bit-identity can be
/// asserted across the wire.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CellLine {
    /// Window index.
    pub window: u32,
    /// Serving PoP.
    pub pop: u16,
    /// Client prefix base address.
    pub prefix_base: u32,
    /// Client prefix length.
    pub prefix_len: u8,
    /// Client country id.
    pub country: u16,
    /// Client continent id.
    pub continent: u8,
    /// Route rank (0 = preferred).
    pub rank: u8,
    /// Relationship label (`private` / `public` / `transit`).
    pub relationship: String,
    /// AS path longer than the preferred route's.
    pub longer_path: bool,
    /// More prepended than the preferred route.
    pub more_prepended: bool,
    /// Sessions recorded.
    pub n: u64,
    /// Sessions with an HDratio.
    pub n_tested: u64,
    /// Traffic bytes.
    pub bytes: u64,
    /// Median MinRTT (ms).
    pub min_rtt_p50: f64,
    /// Price–Bonett variance of the MinRTT median.
    pub min_rtt_var: Option<f64>,
    /// Median HDratio.
    pub hdratio_p50: Option<f64>,
    /// Price–Bonett variance of the HDratio median.
    pub hdratio_var: Option<f64>,
}

impl CellLine {
    /// Flatten a closed cell for the wire.
    pub fn new(window: u32, key: &CellKey, s: &CellSummary) -> CellLine {
        let (group, rank) = key;
        CellLine {
            window,
            pop: group.pop.0,
            prefix_base: group.prefix.base,
            prefix_len: group.prefix.len,
            country: group.country,
            continent: group.continent,
            rank: *rank,
            relationship: s.relationship.label().to_string(),
            longer_path: s.longer_path,
            more_prepended: s.more_prepended,
            n: s.n as u64,
            n_tested: s.n_tested as u64,
            bytes: s.bytes,
            min_rtt_p50: s.min_rtt_p50,
            min_rtt_var: s.min_rtt_var,
            hdratio_p50: s.hdratio_p50,
            hdratio_var: s.hdratio_var,
        }
    }

    /// The cell's group key.
    pub fn group(&self) -> GroupKey {
        GroupKey {
            pop: PopId(self.pop),
            prefix: Prefix::new(self.prefix_base, self.prefix_len),
            country: self.country,
            continent: self.continent,
        }
    }
}

/// A coalesced run of parsed records — the unit carried by data lanes
/// and recycled back through the reverse ring.
type Batch = Vec<LiveRecord>;

/// Control-plane messages, delivered over each worker's unbounded mpsc
/// channel so they never queue behind (or block on) full record lanes.
enum ControlMsg {
    Ping(Sender<()>),
    Snapshot(Sender<WorkerSnap>),
    /// Closed cells from this worker's RAM tier matching the query.
    Cells(CellQuery, Sender<Vec<CellLine>>),
}

/// Records a reader coalesces per worker before pushing a batch onto the
/// lane. [`LiveConfig::queue_capacity`] is counted in records and
/// converted to `queue_capacity / RECORD_BATCH` ring slots, so worst-case
/// queued records per lane stays ≈ `queue_capacity`.
const RECORD_BATCH: usize = 64;

/// Batches a worker takes from one lane before moving to the next —
/// bounds per-lane burst so one hot connection cannot starve the rest.
const BATCHES_PER_LANE_ROUND: usize = 4;

/// Point-in-time view of one worker, produced on request or at drain.
#[derive(Debug, Clone, Default)]
struct WorkerSnap {
    processed: u64,
    queue_depth: usize,
    groups: usize,
    open_windows: usize,
    windows_closed: u64,
    events: [u64; 2],
    episodes_opened: u64,
    episodes_open: usize,
    class_counts_minrtt: [u64; 5],
}

fn class_slot(class: TemporalClass) -> usize {
    match class {
        TemporalClass::Ignored => 0,
        TemporalClass::Uneventful => 1,
        TemporalClass::Continuous => 2,
        TemporalClass::Diurnal => 3,
        TemporalClass::Episodic => 4,
    }
}

const CLASS_LABELS: [&str; 5] = ["ignored", "uneventful", "continuous", "diurnal", "episodic"];

/// One shard of the accept/reject accounting. Each reader and each
/// worker owns a cell; totals exist only at snapshot time
/// ([`Shared::stat_totals`]), so the hot path touches thread-local
/// cache lines instead of a global `Mutex<BTreeMap>`.
#[derive(Default)]
struct StatCell {
    accepted: AtomicU64,
    rejected: AtomicU64,
    late: AtomicU64,
    /// Reason → count. A mutex, but per-cell and only on the reject
    /// path, which is rare by construction.
    reasons: Mutex<BTreeMap<&'static str, u64>>,
}

/// Rolled-up accept/reject totals (also the retirement accumulator for
/// readers that have come and gone).
#[derive(Default)]
struct StatTotals {
    accepted: u64,
    rejected: u64,
    late: u64,
    reasons: BTreeMap<&'static str, u64>,
}

impl StatTotals {
    fn add_cell(&mut self, cell: &StatCell) {
        self.accepted += cell.accepted.load(Ordering::Relaxed);
        self.rejected += cell.rejected.load(Ordering::Relaxed);
        self.late += cell.late.load(Ordering::Relaxed);
        for (reason, n) in cell.reasons.lock().expect("reason map").iter() {
            *self.reasons.entry(reason).or_insert(0) += n;
        }
    }
}

/// Live reader cells plus the folded totals of retired ones. A reader
/// folds its cell into `retired` *before* closing its lanes (see
/// [`ReaderLanes::retire`]), so a drained snapshot — taken only after
/// every lane closed — always sees complete reject counts.
#[derive(Default)]
struct ReaderStats {
    active: Vec<Arc<StatCell>>,
    retired: StatTotals,
}

/// Worker-side rendezvous: new lanes arrive through `incoming`
/// (versioned so the worker only takes the lock when something
/// changed), and `bell`/`seq` are the doorbell producers ring after
/// pushing work.
#[derive(Default)]
struct WorkerHub {
    bell: Waiter,
    /// Bumped on every doorbell ring; the worker parks until it moves.
    seq: AtomicU64,
    /// Bumped when `incoming` gains lanes.
    version: AtomicU64,
    incoming: Mutex<Vec<LaneRx>>,
}

impl WorkerHub {
    /// Publish progress (a pushed batch, a closed lane, a control
    /// message) and wake the worker if it is parked.
    fn ring(&self) {
        self.seq.fetch_add(1, Ordering::Release);
        self.bell.notify();
    }
}

/// Reader-side end of one (reader, worker) lane.
struct LaneTx {
    data: Producer<Batch>,
    /// Spent batch `Vec`s coming back from the worker.
    recycle: Consumer<Batch>,
    /// Parked-producer doorbell; the worker rings it after freeing a
    /// slot or applying a batch.
    bell: Arc<Waiter>,
    /// Records the worker has fully applied from this lane.
    applied: Arc<AtomicU64>,
    hub: Arc<WorkerHub>,
    /// Records pushed onto the lane so far (`applied` chases this).
    pushed: u64,
    /// The partial batch being coalesced.
    batch: Batch,
}

impl LaneTx {
    /// Push the coalesced batch, blocking (spin-then-park) while the
    /// ring is full — backpressure, never drops. Steady state this is a
    /// recycle pop, a slot write, and one release store. Returns the
    /// number of records that could NOT be delivered because the worker
    /// abandoned the lane for good — callers must account them as
    /// rejects, never lose them silently.
    fn flush(&mut self) -> u64 {
        if self.batch.is_empty() {
            return 0;
        }
        let next = match self.recycle.try_pop() {
            Some(mut spent) => {
                spent.clear();
                spent
            }
            None => Vec::with_capacity(RECORD_BATCH),
        };
        let mut batch = std::mem::replace(&mut self.batch, next);
        self.pushed += batch.len() as u64;
        loop {
            if self.data.is_abandoned() {
                // Worker gone for good; nothing will ever drain the
                // lane. Report the loss so totals still add up.
                return batch.len() as u64;
            }
            match self.data.try_push(batch) {
                Ok(()) => break,
                Err(back) => {
                    batch = back;
                    self.bell.wait_until(|| self.data.has_space() || self.data.is_abandoned());
                }
            }
        }
        self.hub.ring();
        0
    }
}

/// Fold records dropped by an abandoned lane into the reader's stat
/// cell as `worker_lost` rejects (they were neither applied nor late).
fn count_worker_lost(cell: &StatCell, dropped: u64) {
    if dropped == 0 {
        return;
    }
    cell.rejected.fetch_add(dropped, Ordering::Relaxed);
    *cell.reasons.lock().expect("reason map").entry("worker_lost").or_insert(0) += dropped;
}

/// Worker-side end of one (reader, worker) lane.
struct LaneRx {
    data: Consumer<Batch>,
    recycle: Producer<Batch>,
    bell: Arc<Waiter>,
    applied: Arc<AtomicU64>,
}

/// Everything a reader owns: one lane per worker plus its stat cell.
#[derive(Default)]
struct ReaderLanes {
    lanes: Vec<LaneTx>,
    cell: Arc<StatCell>,
}

impl ReaderLanes {
    /// Shard a record to its worker's lane, flushing at the batch size.
    fn route(&mut self, rec: LiveRecord) {
        let w = shard_of(&rec.group, self.lanes.len());
        let lane = &mut self.lanes[w];
        lane.batch.push(rec);
        if lane.batch.len() >= RECORD_BATCH {
            let dropped = lane.flush();
            count_worker_lost(&self.cell, dropped);
        }
    }

    /// Hand workers every partial batch (called before blocking on the
    /// socket, so a quiet connection never strands records).
    fn flush_all(&mut self) {
        for lane in &mut self.lanes {
            let dropped = lane.flush();
            count_worker_lost(&self.cell, dropped);
        }
    }

    /// Flush, then wait until the workers have applied everything this
    /// connection pushed — the "commands observe everything this
    /// connection sent before them" barrier.
    fn sync(&mut self) {
        self.flush_all();
        for lane in &self.lanes {
            if lane.applied.load(Ordering::Acquire) >= lane.pushed {
                continue;
            }
            lane.bell.wait_until(|| {
                lane.applied.load(Ordering::Acquire) >= lane.pushed || lane.data.is_abandoned()
            });
        }
    }

    /// Reader is done: flush stragglers, fold the stat cell into the
    /// retired totals, and only then close the lanes. Workers treat a
    /// closed, drained lane as gone, and may exit once all lanes are —
    /// the fold-before-close order is what makes the final snapshot
    /// exact.
    fn retire(mut self, shared: &Shared) {
        self.flush_all();
        {
            let mut stats = shared.reader_stats.lock().expect("reader stats");
            stats.active.retain(|c| !Arc::ptr_eq(c, &self.cell));
            stats.retired.add_cell(&self.cell);
        }
        self.lanes.clear();
        for hub in &shared.hubs {
            hub.ring();
        }
    }
}

/// State shared by the acceptor, readers, workers and the supervisor.
struct Shared {
    config: LiveConfig,
    /// The actually-bound listen address (resolves `:0` binds) — the
    /// drain wake-up connection must target this, not `config.addr`.
    bound_addr: SocketAddr,
    metrics: Metrics,
    board: HeartbeatBoard,
    draining: AtomicBool,
    supervisor_stop: AtomicBool,
    /// The tiered window store; `None` without a spill directory.
    store: Option<Arc<SegmentStore>>,
    /// One rendezvous per worker; readers register lanes here.
    hubs: Vec<Arc<WorkerHub>>,
    /// One stat cell per worker (accepts, late/overflow rejects).
    worker_stats: Vec<Arc<StatCell>>,
    /// Reader stat cells, live and retired.
    reader_stats: Mutex<ReaderStats>,
    /// Bounded sample of recent reject messages (triage without logs).
    reject_log: Mutex<VecDeque<String>>,
    /// Control senders, one per worker; `None` once draining. Doubles
    /// as the "is the server accepting lanes" gate for readers.
    router: Mutex<Option<Vec<Sender<ControlMsg>>>>,
    /// Final per-worker reports, filled as workers drain.
    reports: Mutex<Vec<WorkerSnap>>,
    reports_ready: Condvar,
    final_snapshot: Mutex<Option<LiveSnapshot>>,
    conns: Mutex<Vec<(u64, TcpStream)>>,
    conn_seq: AtomicU64,
    reader_handles: Mutex<Vec<JoinHandle<()>>>,
    /// Resume sessions: cumulative consumed-record acks per session id.
    sessions: Mutex<HashMap<u64, SessionEntry>>,
    /// Signalled when a session's owning connection retires, releasing
    /// `hello`/`resume` waiters.
    sessions_cv: Condvar,
}

/// One resume session: the ack is the cumulative number of records the
/// server has *consumed* (applied or rejected) across all epochs, and is
/// only advanced after the owning reader's final [`ReaderLanes::sync`] —
/// so a client resending from the ack can never double-count.
#[derive(Default)]
struct SessionEntry {
    /// Highest epoch a `hello` announced.
    epoch: u64,
    /// Cumulative consumed records, published at reader retirement.
    acked: u64,
    /// A connection currently owns this session.
    active: bool,
}

/// How long `hello`/`resume` wait for the previous epoch's connection
/// to retire before giving up with `SessionBusy`.
const SESSION_HANDOFF_DEADLINE: Duration = Duration::from_secs(10);

/// Per-connection resume bookkeeping while a session is attached.
struct SessionCtx {
    id: u64,
    /// Records consumed on this connection (this epoch) so far.
    consumed: u64,
}

impl Shared {
    /// Count a reject into `cell` (the caller's shard) plus the global
    /// metrics counter and the sampled log.
    fn reject(&self, cell: &StatCell, context: &str, err: &EdgeperfError) {
        let reason = err.reason();
        cell.rejected.fetch_add(1, Ordering::Relaxed);
        if reason == "late" {
            cell.late.fetch_add(1, Ordering::Relaxed);
        }
        self.metrics.counter(&format!("ingest.reject.{reason}")).inc();
        *cell.reasons.lock().expect("reason map").entry(reason).or_insert(0) += 1;
        let mut log = self.reject_log.lock().expect("reject log");
        if log.len() >= 256 {
            log.pop_front();
        }
        log.push_back(format!("{context}: {err}"));
    }

    /// Claim session `id` for the calling connection, waiting (bounded)
    /// for a previous owner to retire so its ack is final. Returns the
    /// cumulative ack to resume from; `None` if the hand-off timed out.
    fn session_begin(&self, id: u64, epoch: u64) -> Option<u64> {
        let deadline = Instant::now() + SESSION_HANDOFF_DEADLINE;
        let mut map = self.sessions.lock().expect("sessions");
        loop {
            let entry = map.entry(id).or_default();
            if !entry.active {
                entry.active = true;
                entry.epoch = entry.epoch.max(epoch);
                return Some(entry.acked);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            map = self.sessions_cv.wait_timeout(map, deadline - now).expect("sessions wait").0;
        }
    }

    /// Release session `id`, folding this connection's consumed count
    /// into the cumulative ack. Callers must `sync()` their lanes first
    /// so every acked record is actually applied.
    fn session_end(&self, id: u64, consumed: u64) {
        let mut map = self.sessions.lock().expect("sessions");
        if let Some(entry) = map.get_mut(&id) {
            entry.acked += consumed;
            entry.active = false;
        }
        drop(map);
        self.sessions_cv.notify_all();
    }

    /// The final ack for `id`, waiting (bounded) for an active owner to
    /// retire first. Unknown sessions ack 0. `None` on timeout.
    fn session_ack(&self, id: u64) -> Option<u64> {
        let deadline = Instant::now() + SESSION_HANDOFF_DEADLINE;
        let mut map = self.sessions.lock().expect("sessions");
        loop {
            match map.get(&id) {
                Some(entry) if entry.active => {}
                Some(entry) => return Some(entry.acked),
                None => return Some(0),
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            map = self.sessions_cv.wait_timeout(map, deadline - now).expect("sessions wait").0;
        }
    }

    /// Roll the sharded stat cells up into totals. Exact for any
    /// quiescent cell (its owner stopped pushing); approximate only in
    /// the benign snapshot-during-traffic sense the old global counters
    /// had too.
    fn stat_totals(&self) -> StatTotals {
        let mut totals = StatTotals::default();
        for cell in &self.worker_stats {
            totals.add_cell(cell);
        }
        let readers = self.reader_stats.lock().expect("reader stats");
        for cell in &readers.active {
            totals.add_cell(cell);
        }
        totals.accepted += readers.retired.accepted;
        totals.rejected += readers.retired.rejected;
        totals.late += readers.retired.late;
        for (reason, n) in &readers.retired.reasons {
            *totals.reasons.entry(reason).or_insert(0) += n;
        }
        totals
    }

    fn snapshot_from(&self, per_worker: &[WorkerSnap], drained: bool) -> LiveSnapshot {
        let totals = self.stat_totals();
        let mut snap = LiveSnapshot {
            drained,
            workers: self.config.workers as u64,
            accepted: totals.accepted,
            rejected: totals.rejected,
            late: totals.late,
            ..LiveSnapshot::default()
        };
        let mut classes = [0u64; 5];
        for w in per_worker {
            snap.groups += w.groups as u64;
            snap.windows_closed += w.windows_closed;
            snap.open_windows += w.open_windows as u64;
            snap.events_minrtt += w.events[0];
            snap.events_hdratio += w.events[1];
            snap.episodes_opened += w.episodes_opened;
            snap.episodes_open += w.episodes_open as u64;
            for (i, c) in w.class_counts_minrtt.iter().enumerate() {
                classes[i] += c;
            }
        }
        snap.reject_reasons = totals
            .reasons
            .iter()
            .map(|(reason, count)| ReasonCount { reason: reason.to_string(), count: *count })
            .collect();
        snap.classes_minrtt = CLASS_LABELS
            .iter()
            .zip(classes)
            .filter(|&(_, n)| n > 0)
            .map(|(label, n)| ClassCount { class: label.to_string(), groups: n })
            .collect();
        snap
    }
}

/// Deterministic group → worker shard (same FxHash as the offline
/// sinks). Public so the bench crate's per-stage profile can time the
/// real routing function.
pub fn shard_of(group: &GroupKey, workers: usize) -> usize {
    let mut h = FxHasher::default();
    group.hash(&mut h);
    (h.finish() as usize) % workers
}

/// Open one lane per worker for a new connection, plus its stat cell.
/// `None` once the server is draining (the router is gone).
fn register_reader(shared: &Arc<Shared>) -> Option<ReaderLanes> {
    let router = shared.router.lock().expect("router");
    router.as_ref()?;
    let batch_slots = shared.config.queue_capacity.div_ceil(RECORD_BATCH).max(1);
    let mut lanes = Vec::with_capacity(shared.hubs.len());
    for hub in &shared.hubs {
        let (data_tx, data_rx) = spsc::<Batch>(batch_slots);
        // +2 so a worker returning a spent Vec while the reader holds
        // one in flight still finds a slot in the common case; overflow
        // just drops the Vec (allocation, not correctness).
        let (recycle_tx, recycle_rx) = spsc::<Batch>(batch_slots + 2);
        let bell = Arc::new(Waiter::default());
        let applied = Arc::new(AtomicU64::new(0));
        hub.incoming.lock().expect("incoming lanes").push(LaneRx {
            data: data_rx,
            recycle: recycle_tx,
            bell: Arc::clone(&bell),
            applied: Arc::clone(&applied),
        });
        hub.version.fetch_add(1, Ordering::Release);
        lanes.push(LaneTx {
            data: data_tx,
            recycle: recycle_rx,
            bell,
            applied,
            hub: Arc::clone(hub),
            pushed: 0,
            batch: Vec::with_capacity(RECORD_BATCH),
        });
    }
    let cell = Arc::new(StatCell::default());
    shared.reader_stats.lock().expect("reader stats").active.push(Arc::clone(&cell));
    drop(router);
    for hub in &shared.hubs {
        hub.ring();
    }
    Some(ReaderLanes { lanes, cell })
}

/// Clone worker `w`'s control sender, if the server is still routing.
fn control_sender(shared: &Shared, w: usize) -> Option<Sender<ControlMsg>> {
    shared.router.lock().expect("router").as_ref().map(|senders| senders[w].clone())
}

/// A running [`LiveServer`]: the bound address plus every thread handle.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    compactor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound listen address (resolves `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until a client drains the server (the `shutdown` command),
    /// join every thread, and return the final snapshot.
    pub fn join(mut self) -> LiveSnapshot {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for h in self.shared.reader_handles.lock().expect("reader handles").drain(..) {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.supervisor_stop.store(true, Ordering::Release);
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        if let Some(c) = self.compactor.take() {
            let _ = c.join();
        }
        self.shared.final_snapshot.lock().expect("final snapshot").clone().unwrap_or_default()
    }

    /// Convenience for tests and embedders: issue `shutdown` from here
    /// and join. Returns the final (drained) snapshot.
    pub fn shutdown_and_join(self) -> std::io::Result<LiveSnapshot> {
        let mut client = crate::client::LiveClient::connect(self.addr)?;
        let snap = client.shutdown()?;
        let joined = self.join();
        // Prefer the snapshot the server handed the draining client; the
        // joined one is identical but may be missing if another client
        // raced the drain.
        Ok(if snap.drained { snap } else { joined })
    }
}

/// The live session-ingest server. See the module docs.
pub struct LiveServer;

impl LiveServer {
    /// Validate `config`, bind, and start every thread. The wire format
    /// is supplied by `parser`; pipeline metrics land in `metrics`.
    pub fn start(
        config: LiveConfig,
        parser: Arc<dyn LineParser>,
        metrics: Metrics,
    ) -> Result<ServerHandle, EdgeperfError> {
        config.validate()?;
        // Open (and, on restart, recover) the tiered store before
        // binding: a manifest problem should fail startup, not the
        // first eviction.
        let store = match &config.spill_dir {
            Some(dir) => {
                let store = SegmentStore::open(
                    dir,
                    config.compact_min_segments,
                    config.compact_batch,
                    config.spill_fail_threshold,
                )?;
                store.set_chaos(config.chaos.clone());
                Some(Arc::new(store))
            }
            None => None,
        };
        let listener = TcpListener::bind(&config.addr).map_err(|e| {
            EdgeperfError::InvalidConfig { field: "addr", message: format!("{}: {e}", config.addr) }
        })?;
        let addr = listener
            .local_addr()
            .map_err(|e| EdgeperfError::InvalidConfig { field: "addr", message: e.to_string() })?;
        let workers = config.workers;
        let shared = Arc::new(Shared {
            store,
            bound_addr: addr,
            board: HeartbeatBoard::new(workers),
            metrics,
            draining: AtomicBool::new(false),
            supervisor_stop: AtomicBool::new(false),
            hubs: (0..workers).map(|_| Arc::new(WorkerHub::default())).collect(),
            worker_stats: (0..workers).map(|_| Arc::new(StatCell::default())).collect(),
            reader_stats: Mutex::new(ReaderStats::default()),
            reject_log: Mutex::new(VecDeque::new()),
            router: Mutex::new(None),
            reports: Mutex::new(Vec::new()),
            reports_ready: Condvar::new(),
            final_snapshot: Mutex::new(None),
            conns: Mutex::new(Vec::new()),
            conn_seq: AtomicU64::new(0),
            reader_handles: Mutex::new(Vec::new()),
            sessions: Mutex::new(HashMap::new()),
            sessions_cv: Condvar::new(),
            config,
        });

        // Thread spawns can fail (EAGAIN under thread/pid limits); a
        // failure here aborts startup with a typed error and unwinds
        // the workers already running instead of panicking.
        let spawn_or_unwind = |what: &'static str,
                               name: String,
                               f: Box<dyn FnOnce() + Send>|
         -> Result<JoinHandle<()>, EdgeperfError> {
            std::thread::Builder::new().name(name).spawn(f).map_err(|e| {
                shared.draining.store(true, Ordering::Release);
                *shared.router.lock().expect("router") = None;
                for hub in &shared.hubs {
                    hub.ring();
                }
                EdgeperfError::Spawn { what, message: e.to_string() }
            })
        };

        let mut worker_handles = Vec::with_capacity(workers);
        let mut control_senders = Vec::with_capacity(workers);
        for w in 0..workers {
            let (control_tx, control_rx) = channel();
            control_senders.push(control_tx);
            let hub = Arc::clone(&shared.hubs[w]);
            let shared_w = Arc::clone(&shared);
            worker_handles.push(spawn_or_unwind(
                "worker",
                format!("live-worker-{w}"),
                Box::new(move || worker_thread(w, &shared_w, &hub, &control_rx)),
            )?);
        }
        *shared.router.lock().expect("router") = Some(control_senders);

        let supervisor = {
            let shared_s = Arc::clone(&shared);
            spawn_or_unwind(
                "supervisor",
                "live-supervisor".to_string(),
                Box::new(move || supervisor_loop(&shared_s)),
            )?
        };

        let compactor = match shared.store.as_ref() {
            Some(store) => {
                let store = Arc::clone(store);
                let shared_c = Arc::clone(&shared);
                Some(spawn_or_unwind(
                    "compactor",
                    "live-compactor".to_string(),
                    Box::new(move || compactor_loop(&shared_c, &store)),
                )?)
            }
            None => None,
        };

        let acceptor = {
            let shared_a = Arc::clone(&shared);
            let parser = Arc::clone(&parser);
            spawn_or_unwind(
                "acceptor",
                "live-acceptor".to_string(),
                Box::new(move || acceptor_loop(listener, &shared_a, parser)),
            )?
        };

        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
            supervisor: Some(supervisor),
            compactor,
        })
    }
}

fn acceptor_loop(listener: TcpListener, shared: &Arc<Shared>, parser: Arc<dyn LineParser>) {
    let refused = shared.metrics.counter("live.conns.refused");
    let spawn_errors = shared.metrics.counter("live.spawn_errors");
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Connection cap: refuse (close immediately) past the limit so
        // a connection flood degrades politely instead of exhausting
        // reader threads.
        let cap = shared.config.max_connections;
        if cap > 0 && shared.conns.lock().expect("conns").len() >= cap {
            refused.inc();
            drop(stream);
            continue;
        }
        // Protocol replies are tiny; without this every command
        // round-trip stalls on Nagle + delayed ACKs (~40 ms).
        let _ = stream.set_nodelay(true);
        // Slow-client protection: a reader blocked on a dead or stalled
        // peer times out and evicts instead of pinning a thread (and,
        // for sessions, its ack hand-off) forever.
        if shared.config.idle_timeout_ms > 0 {
            let _ =
                stream.set_read_timeout(Some(Duration::from_millis(shared.config.idle_timeout_ms)));
        }
        if shared.config.write_timeout_ms > 0 {
            let _ = stream
                .set_write_timeout(Some(Duration::from_millis(shared.config.write_timeout_ms)));
        }
        let id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conns").push((id, clone));
        }
        let shared_cloned = Arc::clone(shared);
        let parser = Arc::clone(&parser);
        let spawned =
            std::thread::Builder::new().name(format!("live-reader-{id}")).spawn(move || {
                reader_loop(id, stream, &shared_cloned, parser);
                shared_cloned.conns.lock().expect("conns").retain(|(cid, _)| *cid != id);
            });
        match spawned {
            Ok(handle) => shared.reader_handles.lock().expect("reader handles").push(handle),
            Err(e) => {
                // Reader spawn failed (EMFILE/EAGAIN): refuse this one
                // connection — the dropped closure closes the stream —
                // and keep accepting; a transient limit must not kill
                // the acceptor.
                let err = EdgeperfError::Spawn { what: "reader", message: e.to_string() };
                spawn_errors.inc();
                refused.inc();
                shared.conns.lock().expect("conns").retain(|(cid, _)| *cid != id);
                let mut log = shared.reject_log.lock().expect("reject log");
                if log.len() >= 256 {
                    log.pop_front();
                }
                log.push_back(format!("conn {id}: {err}"));
            }
        }
    }
}

fn reader_loop(id: u64, stream: TcpStream, shared: &Arc<Shared>, parser: Arc<dyn LineParser>) {
    let Ok(mut out) = stream.try_clone() else { return };
    let Some(mut lanes) = register_reader(shared) else { return };
    // Wire negotiation: sniff the first bytes against the binary magic.
    // The comparison is incremental, so a JSONL client's `{` (or any
    // other first byte) commits to line mode after one read — we never
    // wait for 8 bytes that will not come.
    let mut pre = [0u8; PREAMBLE_LEN];
    let mut got = 0usize;
    let mut magic_possible = true;
    while magic_possible && got < PREAMBLE_LEN {
        match (&stream).read(&mut pre[got..]) {
            Ok(0) => break,
            Ok(n) => {
                got += n;
                let cmp = got.min(FRAME_MAGIC.len());
                magic_possible = pre[..cmp] == FRAME_MAGIC[..cmp];
            }
            Err(_) => {
                lanes.retire(shared);
                return;
            }
        }
    }
    if magic_possible && got == PREAMBLE_LEN {
        match parse_preamble(&pre) {
            Ok((body_len, hello)) => {
                let mut session: Option<SessionCtx> = None;
                let mut admitted = true;
                if hello {
                    // The preamble announced a resume hello: read the
                    // fixed-size block, claim the session, and ack the
                    // resume point before any frames flow.
                    let mut block = [0u8; HELLO_LEN];
                    match (&stream).read_exact(&mut block) {
                        Ok(()) => match parse_hello(&block) {
                            Ok((sid, epoch)) => match shared.session_begin(sid, epoch) {
                                Some(acked) => {
                                    session = Some(SessionCtx { id: sid, consumed: 0 });
                                    let reply = Response::Acked(acked).render();
                                    if out.write_all(reply.as_bytes()).is_err()
                                        || out.write_all(b"\n").is_err()
                                    {
                                        admitted = false;
                                    }
                                }
                                None => {
                                    let reply = Response::SessionBusy.render();
                                    let _ = out.write_all(reply.as_bytes());
                                    let _ = out.write_all(b"\n");
                                    admitted = false;
                                }
                            },
                            Err(err) => {
                                shared.reject(&lanes.cell, &format!("conn {id} hello"), &err);
                                admitted = false;
                            }
                        },
                        Err(_) => admitted = false,
                    }
                }
                if admitted {
                    binary_reader_loop(id, stream, body_len, shared, &mut lanes, session.as_mut());
                }
                if let Some(sc) = session {
                    // Publish the ack only after every routed record is
                    // applied — the exactly-once guarantee.
                    lanes.sync();
                    shared.session_end(sc.id, sc.consumed);
                }
            }
            Err(err) => shared.reject(&lanes.cell, &format!("conn {id} preamble"), &err),
        }
        lanes.retire(shared);
        return;
    }
    // Line mode: hand the already-consumed sniff bytes back to the
    // parser by chaining them in front of the socket.
    let reader = BufReader::with_capacity(
        shared.config.read_buffer_bytes,
        Cursor::new(pre[..got].to_vec()).chain(stream),
    );
    let session = line_reader_loop(id, reader, &mut out, shared, parser, &mut lanes);
    if let Some(sc) = session {
        lanes.sync();
        shared.session_end(sc.id, sc.consumed);
    }
    lanes.retire(shared);
}

/// Binary-mode connection: decode length-prefixed frames from a
/// reusable buffer and shard them exactly like parsed JSONL records.
/// Data-only — the first malformed frame (or EOF) ends the connection.
///
/// With a resume `session`, every cleanly decoded frame counts toward
/// the session's consumed total; a torn frame left pending at EOF is
/// *not* consumed (counted under `ingest.truncated`), so the client
/// resends it after reconnecting and nothing is lost or double-counted.
fn binary_reader_loop(
    id: u64,
    mut stream: TcpStream,
    body_len: usize,
    shared: &Arc<Shared>,
    lanes: &mut ReaderLanes,
    mut session: Option<&mut SessionCtx>,
) {
    let frames_counter = shared.metrics.counter("ingest.frames");
    let accepted_counter = shared.metrics.counter("live.accepted");
    let mut decoder = FrameDecoder::new(body_len, shared.config.read_buffer_bytes);
    let mut frame_no = 0u64;
    loop {
        let writable = decoder.writable();
        let writable_len = writable.len();
        let n = match stream.read(writable) {
            Ok(0) => {
                // Give back the unused spare region so `pending()`
                // below reflects only real (torn-frame) bytes.
                decoder.advance(0, writable_len);
                break;
            }
            Err(e) => {
                decoder.advance(0, writable_len);
                if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
                {
                    shared.metrics.counter("live.conns.evicted").inc();
                }
                break;
            }
            Ok(n) => n,
        };
        decoder.advance(n, writable_len);
        loop {
            match decoder.next_record() {
                Ok(Some(rec)) => {
                    frame_no += 1;
                    frames_counter.inc();
                    accepted_counter.inc();
                    if let Some(sc) = session.as_deref_mut() {
                        sc.consumed += 1;
                    }
                    lanes.route(rec);
                }
                Ok(None) => break,
                Err(err) => {
                    shared.reject(&lanes.cell, &format!("conn {id} frame {}", frame_no + 1), &err);
                    return;
                }
            }
        }
        // About to block on the socket: hand workers everything decoded
        // so far (same invariant as the line path — a quiet connection
        // never strands records in a partial batch).
        lanes.flush_all();
    }
    if decoder.pending() > 0 {
        // Torn tail: a frame was cut mid-wire. Not consumed, not
        // rejected — a resuming client replays it whole.
        shared.metrics.counter("ingest.truncated").inc();
    }
}

/// JSONL-mode connection: the line protocol (records + commands).
/// Returns the attached resume session (if a `hello` arrived) so the
/// caller can sync lanes and publish the final ack.
fn line_reader_loop<R: Read>(
    id: u64,
    mut reader: BufReader<R>,
    out: &mut TcpStream,
    shared: &Arc<Shared>,
    parser: Arc<dyn LineParser>,
    lanes: &mut ReaderLanes,
) -> Option<SessionCtx> {
    let workers = shared.config.workers;
    let lines_counter = shared.metrics.counter("ingest.lines");
    let accepted_counter = shared.metrics.counter("live.accepted");
    let mut line = String::new();
    let mut line_no = 0u64;
    let mut rr = id as usize;
    let mut session: Option<SessionCtx> = None;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Err(e) => {
                if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
                {
                    shared.metrics.counter("live.conns.evicted").inc();
                }
                break;
            }
            Ok(_) => {}
        }
        if session.is_some() && !line.ends_with('\n') {
            // Truncated tail: the connection died mid-line. Under a
            // resume session the partial record is neither consumed nor
            // rejected — the client replays it whole after reconnect.
            shared.metrics.counter("ingest.truncated").inc();
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with('{') {
            line_no += 1;
            lines_counter.inc();
            if let Some(sc) = session.as_mut() {
                sc.consumed += 1;
            }
            match parser.parse(trimmed) {
                Ok(rec) => {
                    accepted_counter.inc();
                    lanes.route(rec);
                }
                Err(err) => shared.reject(&lanes.cell, &format!("conn {id} line {line_no}"), &err),
            }
            // About to block on the socket: hand workers everything
            // parsed so far, so a quiet connection never strands
            // records in a partial batch (snapshots taken while the
            // sender idles must observe them).
            if reader.buffer().is_empty() {
                lanes.flush_all();
            }
            continue;
        }
        // One parse path for every command line; syntax errors render
        // their reply without touching any server state.
        let reply = match Request::parse(trimmed) {
            Err(err) => Response::Error(err).render(),
            Ok(request) => {
                // State-reporting commands observe everything this
                // connection sent before them; `ping` and `metrics`
                // skip the barrier so they stay responsive even while
                // this connection's own lanes are backed up.
                if request.needs_sync() {
                    lanes.sync();
                }
                match request {
                    Request::Hello { session: sid, epoch } => {
                        // Re-hello on a live connection hands the old
                        // session back first so acks stay cumulative.
                        if let Some(prev) = session.take() {
                            lanes.sync();
                            shared.session_end(prev.id, prev.consumed);
                        }
                        match shared.session_begin(sid, epoch) {
                            Some(acked) => {
                                session = Some(SessionCtx { id: sid, consumed: 0 });
                                Response::Acked(acked).render()
                            }
                            None => Response::SessionBusy.render(),
                        }
                    }
                    Request::Resume { session: sid } => match shared.session_ack(sid) {
                        Some(acked) => Response::Acked(acked).render(),
                        None => Response::SessionBusy.render(),
                    },
                    Request::Ping => {
                        rr = (rr + 1) % workers;
                        let mut reply = Response::Gone;
                        if let Some(tx) = control_sender(shared, rr) {
                            let (reply_tx, reply_rx) = channel();
                            if tx.send(ControlMsg::Ping(reply_tx)).is_ok() {
                                shared.hubs[rr].ring();
                                if reply_rx.recv().is_ok() {
                                    reply = Response::Pong;
                                }
                            }
                        }
                        reply.render()
                    }
                    Request::Snapshot => match query_workers(shared, ControlMsg::Snapshot) {
                        Some(per_worker) => {
                            Response::Snapshot(shared.snapshot_from(&per_worker, false)).render()
                        }
                        None => Response::Draining.render(),
                    },
                    Request::Stats => match query_workers(shared, ControlMsg::Snapshot) {
                        Some(per_worker) => Response::Stats(
                            per_worker
                                .iter()
                                .enumerate()
                                .map(|(w, s)| WorkerStatsLine {
                                    worker: u64::try_from(w).expect("worker index fits u64"),
                                    processed: s.processed,
                                    queue_depth: u64::try_from(s.queue_depth)
                                        .expect("usize fits u64"),
                                    groups: u64::try_from(s.groups).expect("usize fits u64"),
                                    open_windows: u64::try_from(s.open_windows)
                                        .expect("usize fits u64"),
                                    windows_closed: s.windows_closed,
                                })
                                .collect(),
                        )
                        .render(),
                        None => Response::Draining.render(),
                    },
                    Request::Cells(query) => serve_cells(shared, &query).render(),
                    Request::Digest { proto, query } => {
                        if proto != PROTOCOL_VERSION {
                            Response::Error(ProtocolError::BadArgument {
                                command: "digest",
                                argument: format!("proto={proto}"),
                                message: format!("server speaks protocol {PROTOCOL_VERSION}"),
                            })
                            .render()
                        } else {
                            serve_digest(shared, &query).render()
                        }
                    }
                    Request::Metrics => Response::Metrics(
                        serde_json::to_string(&shared.metrics.snapshot())
                            .expect("metrics serialize"),
                    )
                    .render(),
                    Request::Store => {
                        Response::Store(shared.store.as_ref().map(|s| s.stats())).render()
                    }
                    Request::Version => Response::Version.render(),
                    Request::Shutdown => {
                        let snap = drain(shared, id, std::mem::take(lanes));
                        let reply = Response::Snapshot(snap).render();
                        let _ = out.write_all(reply.as_bytes());
                        let _ = out.write_all(b"\n");
                        break;
                    }
                    Request::Quit => break,
                }
            }
        };
        if out.write_all(reply.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
            break;
        }
    }
    // EOF / cut connection: the caller retires the lanes, which flushes
    // whatever is still batched. (After `shutdown`, `lanes` was taken
    // and retirement is a no-op.)
    session
}

/// Send `make(reply)` to every worker over the control channels and
/// collect the responses. `None` when the server is already draining.
fn query_workers(
    shared: &Shared,
    make: fn(Sender<WorkerSnap>) -> ControlMsg,
) -> Option<Vec<WorkerSnap>> {
    let senders = shared.router.lock().expect("router").clone()?;
    let mut out = Vec::with_capacity(senders.len());
    for (w, tx) in senders.iter().enumerate() {
        let (reply_tx, reply_rx) = channel();
        tx.send(make(reply_tx)).ok()?;
        shared.hubs[w].ring();
        out.push(reply_rx.recv().ok()?);
    }
    Some(out)
}

/// Canonical cell ordering for merged/filtered replies — the same
/// (window, group, rank) key [`edgeperf_analysis::cell_sort_key`] gives
/// segment rows, so disk- and RAM-sourced cells interleave one way.
/// Public because the fleet tier's global merge sorts (and checks
/// cross-node disjointness) on the very same key.
pub fn cell_line_sort_key(c: &CellLine) -> (u32, u16, u32, u8, u16, u8, u8) {
    (c.window, c.pop, c.prefix_base, c.prefix_len, c.country, c.continent, c.rank)
}

/// Serve a `cells` query from the RAM tier (each worker filters its own
/// closed map) merged with the spilled tier. Windows present in both —
/// spilled but not yet evicted, or still inside the retention horizon on
/// restart replays — are deduplicated preferring the RAM copy; the
/// copies are bit-identical by construction, so preference is about
/// avoiding double rows, not about which bits win.
///
/// Compatibility: a bare `cells` on a store-less server keeps the
/// legacy reply bytes exactly — worker order, insertion order, no sort.
/// Any filtered query, and any server with a store, sorts canonically
/// so results are deterministic across worker counts and spill timing.
fn serve_cells(shared: &Shared, query: &CellQuery) -> Response {
    let mut all: Vec<CellLine> = Vec::new();
    for w in 0..shared.config.workers {
        let Some(tx) = control_sender(shared, w) else { continue };
        let (reply_tx, reply_rx) = channel();
        if tx.send(ControlMsg::Cells(*query, reply_tx)).is_ok() {
            shared.hubs[w].ring();
            if let Ok(cells) = reply_rx.recv() {
                all.extend(cells);
            }
        }
    }
    let Some(store) = &shared.store else {
        if !query.is_all() {
            all.sort_by_key(cell_line_sort_key);
        }
        return Response::Cells(all);
    };
    match store.query(query) {
        Ok(spilled) => {
            let in_ram: std::collections::HashSet<_> = all.iter().map(cell_line_sort_key).collect();
            all.extend(
                spilled
                    .iter()
                    .map(cell_line)
                    .filter(|line| !in_ram.contains(&cell_line_sort_key(line))),
            );
            all.sort_by_key(cell_line_sort_key);
            Response::Cells(all)
        }
        Err(err) => Response::StoreError(err.to_string()),
    }
}

/// Serve a `digest` query: the matching cells plus the accepted-record
/// counter, both observed under the caller's sync barrier so the pair
/// is consistent in a quiesced stream. Unlike the legacy bare `cells`,
/// a digest always sorts canonically — it exists for cross-node
/// merging, where deterministic order is part of the contract.
fn serve_digest(shared: &Shared, query: &CellQuery) -> Response {
    match serve_cells(shared, query) {
        Response::Cells(mut cells) => {
            cells.sort_by_key(cell_line_sort_key);
            Response::Digest { accepted: shared.stat_totals().accepted, cells }
        }
        other => other,
    }
}

/// Drain: stop the acceptor, cut other connections, drop the control
/// router, retire the caller's lanes, wait for the workers to flush,
/// and build the final snapshot.
fn drain(shared: &Arc<Shared>, self_id: u64, lanes: ReaderLanes) -> LiveSnapshot {
    let first = !shared.draining.swap(true, Ordering::AcqRel);
    if first {
        // Wake the acceptor so it observes the flag.
        let _ = TcpStream::connect(shared.bound_addr);
        // Cut every other connection; their readers drain what they
        // have already batched, then retire (fold stats, close lanes).
        for (cid, conn) in shared.conns.lock().expect("conns").iter() {
            if *cid != self_id {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        // Drop the control senders: workers treat a disconnected
        // control channel + no lanes as the exit condition, and readers
        // can no longer register lanes.
        *shared.router.lock().expect("router") = None;
        for hub in &shared.hubs {
            hub.ring();
        }
    }
    lanes.retire(shared);
    let workers = shared.config.workers;
    let mut reports = shared.reports.lock().expect("reports");
    while reports.len() < workers {
        reports = shared.reports_ready.wait(reports).expect("reports wait");
    }
    let snap = shared.snapshot_from(&reports, true);
    drop(reports);
    shared.supervisor_stop.store(true, Ordering::Release);
    let mut slot = shared.final_snapshot.lock().expect("final snapshot");
    if slot.is_none() {
        *slot = Some(snap.clone());
    }
    snap
}

struct WorkerState {
    ring: WindowRing,
    detector: OnlineDetector,
    closed: BTreeMap<u32, Vec<(CellKey, CellSummary)>>,
    processed: u64,
    windows_closed: u64,
}

impl WorkerState {
    fn snap(&self, queue_depth: usize) -> WorkerSnap {
        let mut class_counts_minrtt = [0u64; 5];
        for (_, class) in self.detector.classes(DegradationMetric::MinRtt) {
            class_counts_minrtt[class_slot(class)] += 1;
        }
        WorkerSnap {
            processed: self.processed,
            queue_depth,
            groups: self.detector.group_count(),
            open_windows: self.ring.open_windows(),
            windows_closed: self.windows_closed,
            events: [
                self.detector.event_count(DegradationMetric::MinRtt),
                self.detector.event_count(DegradationMetric::HdRatio),
            ],
            episodes_opened: self.detector.episodes_opened(),
            episodes_open: self.detector.episodes_open(),
            class_counts_minrtt,
        }
    }
}

/// Everything a worker owns across panics. Held *outside* the
/// [`catch_unwind`] in [`worker_thread`], so a respawn resumes with the
/// same lanes and — when the panic hit a clean batch boundary — the
/// same window state. Only a panic caught mid-apply (`inflight` set)
/// forces a window-state rebuild.
struct WorkerCtx {
    state: WorkerState,
    lanes: Vec<LaneRx>,
    seen_version: u64,
    control_dead: bool,
    /// `processed` thresholds at which the chaos plan panics this
    /// worker, ascending; each fires exactly once.
    pending_panics: Vec<u64>,
    /// Set while a batch is mid-apply: `(lane index, records)`. A panic
    /// with this set means the window ring may be inconsistent.
    inflight: Option<(usize, u64)>,
    /// Respawn budget exhausted: drain lanes, count records as
    /// `worker_lost` rejects, keep answering control and the drain
    /// protocol — never strand a reader or the final snapshot.
    zombie: bool,
}

/// Extract a printable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Worker thread entry: run [`worker_run`] under [`catch_unwind`] and
/// respawn it in place (same thread, same [`WorkerCtx`]) after a panic,
/// up to the configured budget; past the budget the worker degrades to
/// zombie mode instead of stranding its readers.
fn worker_thread(
    w: usize,
    shared: &Arc<Shared>,
    hub: &Arc<WorkerHub>,
    control: &Receiver<ControlMsg>,
) {
    let cfg = &shared.config;
    let mut ctx = WorkerCtx {
        state: WorkerState {
            ring: WindowRing::new(cfg.window_ms, cfg.lateness_ms),
            detector: OnlineDetector::new(
                cfg.analysis,
                cfg.minrtt_threshold_ms,
                cfg.hdratio_threshold,
                cfg.retention_windows,
            ),
            closed: BTreeMap::new(),
            processed: 0,
            windows_closed: 0,
        },
        lanes: Vec::new(),
        // u64::MAX forces the first iteration to absorb pre-registered
        // lanes.
        seen_version: u64::MAX,
        control_dead: false,
        pending_panics: cfg.chaos.panics_for(w),
        inflight: None,
        zombie: false,
    };
    let mut respawns = 0u32;
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| worker_run(w, shared, hub, control, &mut ctx)));
        match run {
            Ok(()) => return,
            Err(payload) => {
                recover(w, shared, &mut ctx, &panic_message(payload.as_ref()));
                if respawns >= shared.config.max_worker_respawns {
                    ctx.zombie = true;
                    shared.metrics.counter("worker.zombie").inc();
                } else {
                    respawns += 1;
                }
            }
        }
    }
}

/// Post-panic repair, run between [`worker_run`] incarnations. A clean
/// panic (batch boundary, `inflight` empty) needs nothing beyond
/// accounting — all state survived in [`WorkerCtx`]. A dirty panic lost
/// the mid-apply batch and may have left the ring inconsistent: account
/// the records, unblock the syncing reader, and rebuild window state
/// fresh (already-spilled segments are untouched and still serve
/// queries).
fn recover(w: usize, shared: &Arc<Shared>, ctx: &mut WorkerCtx, msg: &str) {
    // Clear any heartbeat left open mid-batch so the supervisor does
    // not flag the recovered worker as slow forever.
    shared.board.finish(w);
    shared.metrics.counter("worker.recovered").inc();
    {
        let mut log = shared.reject_log.lock().expect("reject log");
        if log.len() >= 256 {
            log.pop_front();
        }
        log.push_back(format!("worker {w} panicked: {msg}; recovered"));
    }
    if let Some((lane_idx, n)) = ctx.inflight.take() {
        let cell = &shared.worker_stats[w];
        shared.metrics.counter("worker.lost_records").add(n);
        shared.metrics.counter("ingest.reject.worker_lost").add(n);
        count_worker_lost(cell, n);
        if let Some(lane) = ctx.lanes.get(lane_idx) {
            lane.applied.fetch_add(n, Ordering::Release);
            lane.bell.notify();
        }
        let lost = ctx.state.ring.open_windows() as u64;
        shared.metrics.counter("worker.lost_windows").add(lost);
        let cfg = &shared.config;
        ctx.state.ring = WindowRing::new(cfg.window_ms, cfg.lateness_ms);
        ctx.state.detector = OnlineDetector::new(
            cfg.analysis,
            cfg.minrtt_threshold_ms,
            cfg.hdratio_threshold,
            cfg.retention_windows,
        );
    }
}

/// Zombie mode: the respawn budget is gone. Batches are drained and
/// counted as `worker_lost` rejects so readers (and resume acks) never
/// block, but no window state is touched.
fn discard_batch(shared: &Shared, lane: &mut LaneRx, mut batch: Batch, cell: &StatCell) {
    let n = batch.len() as u64;
    batch.clear();
    count_worker_lost(cell, n);
    shared.metrics.counter("ingest.reject.worker_lost").add(n);
    shared.metrics.counter("worker.lost_records").add(n);
    let _ = lane.recycle.try_push(batch);
    lane.applied.fetch_add(n, Ordering::Release);
    lane.bell.notify();
}

fn worker_run(
    w: usize,
    shared: &Arc<Shared>,
    hub: &Arc<WorkerHub>,
    control: &Receiver<ControlMsg>,
    ctx: &mut WorkerCtx,
) {
    let cell = Arc::clone(&shared.worker_stats[w]);
    let close_hist = shared.metrics.histogram("live.window_close_ns");
    let depth_hist = shared.metrics.histogram("live.queue_depth");
    let depth_gauge = shared.metrics.gauge(&format!("live.worker.{w}.queue_depth"));
    let processed_gauge = shared.metrics.gauge(&format!("live.worker.{w}.processed"));
    let windows_counter = shared.metrics.counter("live.windows.closed");
    let events_minrtt = shared.metrics.counter("live.events.minrtt");
    let events_hdratio = shared.metrics.counter("live.events.hdratio");
    let episodes_opened = shared.metrics.counter("live.episodes.opened");
    let episodes_closed = shared.metrics.counter("live.episodes.closed");
    let counters =
        (&windows_counter, &events_minrtt, &events_hdratio, &episodes_opened, &episodes_closed);

    loop {
        // The doorbell sequence is read *before* scanning: anything rung
        // after this load is caught by the park condition below.
        let seq = hub.seq.load(Ordering::Acquire);
        let version = hub.version.load(Ordering::Acquire);
        if version != ctx.seen_version {
            ctx.lanes.append(&mut hub.incoming.lock().expect("incoming lanes"));
            ctx.seen_version = version;
        }
        // Chaos: a scripted panic fires at a clean batch boundary, so
        // recovery is lossless — it exercises the respawn and resume
        // machinery without corrupting window state.
        if !ctx.zombie {
            if let Some(&at) = ctx.pending_panics.first() {
                if ctx.state.processed >= at {
                    ctx.pending_panics.remove(0);
                    panic!("chaos: injected worker {w} panic at {at} records");
                }
            }
        }
        let mut progress = false;
        // Control bypass: drained every round, never behind record lanes.
        loop {
            match control.try_recv() {
                Ok(msg) => {
                    progress = true;
                    handle_control(&ctx.state, &ctx.lanes, msg);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    ctx.control_dead = true;
                    break;
                }
            }
        }
        // Round-robin over lanes, a bounded burst from each.
        let mut i = 0;
        while i < ctx.lanes.len() {
            let mut taken = 0usize;
            let mut remove = false;
            loop {
                if taken == BATCHES_PER_LANE_ROUND {
                    break;
                }
                // closed must be read before the pop: closed + empty
                // means drained for good.
                let closed = ctx.lanes[i].data.is_closed();
                match ctx.lanes[i].data.try_pop() {
                    Some(batch) => {
                        if ctx.zombie {
                            discard_batch(shared, &mut ctx.lanes[i], batch, &cell);
                        } else {
                            ctx.inflight = Some((i, batch.len() as u64));
                            apply_batch(
                                w,
                                shared,
                                &mut ctx.state,
                                &mut ctx.lanes[i],
                                batch,
                                &cell,
                                &close_hist,
                                counters,
                            );
                            ctx.inflight = None;
                        }
                        progress = true;
                        taken += 1;
                    }
                    None => {
                        remove = closed;
                        break;
                    }
                }
            }
            if remove {
                ctx.lanes.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if progress {
            let depth: usize = ctx.lanes.iter().map(|l| l.data.len()).sum();
            depth_hist.record(depth as u64);
            depth_gauge.set(depth as f64);
            processed_gauge.set(ctx.state.processed as f64);
            continue;
        }
        if ctx.control_dead
            && shared.draining.load(Ordering::Acquire)
            && ctx.lanes.is_empty()
            && hub.version.load(Ordering::Acquire) == ctx.seen_version
        {
            break;
        }
        hub.bell.wait_until(|| {
            hub.seq.load(Ordering::Acquire) != seq
                || hub.version.load(Ordering::Acquire) != ctx.seen_version
        });
    }

    // Drain: every lane closed and drained, control router gone. Flush
    // the remaining windows, then publish the final report.
    if !ctx.zombie {
        for cw in ctx.state.ring.force_close() {
            handle_close(shared, &mut ctx.state, cw, &close_hist, counters);
        }
    }
    processed_gauge.set(ctx.state.processed as f64);
    depth_gauge.set(0.0);
    let mut reports = shared.reports.lock().expect("reports");
    reports.push(ctx.state.snap(0));
    shared.reports_ready.notify_all();
}

fn handle_control(state: &WorkerState, lanes: &[LaneRx], msg: ControlMsg) {
    match msg {
        ControlMsg::Ping(reply) => {
            let _ = reply.send(());
        }
        ControlMsg::Snapshot(reply) => {
            let depth = lanes.iter().map(|l| l.data.len()).sum();
            let _ = reply.send(state.snap(depth));
        }
        ControlMsg::Cells(query, reply) => {
            let cells = state
                .closed
                .iter()
                .filter(|(window, _)| query.contains_window(**window))
                .flat_map(|(window, cells)| {
                    cells
                        .iter()
                        .filter(|((group, _), _)| query.group.matches(group))
                        .map(|(key, s)| CellLine::new(*window, key, s))
                })
                .collect();
            let _ = reply.send(cells);
        }
    }
}

/// Apply one batch from `lane` into the window ring, then hand the
/// spent `Vec` back through the recycle ring and publish progress
/// (applied counter + lane doorbell) so a parked or syncing reader
/// resumes.
#[allow(clippy::too_many_arguments)]
fn apply_batch(
    w: usize,
    shared: &Shared,
    state: &mut WorkerState,
    lane: &mut LaneRx,
    mut batch: Batch,
    cell: &StatCell,
    close_hist: &edgeperf_obs::Histogram,
    counters: CloseCounters<'_>,
) {
    let token = shared.board.begin(w, state.processed as usize & 0xFFFF);
    let n = batch.len() as u64;
    let mut accepted = 0u64;
    for rec in batch.drain(..) {
        state.processed += 1;
        match state.ring.push(&rec) {
            Ok(closed) => {
                accepted += 1;
                for cw in closed {
                    handle_close(shared, state, cw, close_hist, counters);
                }
            }
            Err(err) => shared.reject(cell, &format!("worker {w}"), &err),
        }
    }
    cell.accepted.fetch_add(accepted, Ordering::Relaxed);
    // Return the drained Vec for reuse; a full recycle ring just drops
    // it (the reader will allocate a fresh one).
    let _ = lane.recycle.try_push(batch);
    lane.applied.fetch_add(n, Ordering::Release);
    lane.bell.notify();
    shared.board.finish(w);
    let _ = token;
}

type CloseCounters<'a> = (
    &'a edgeperf_obs::Counter,
    &'a edgeperf_obs::Counter,
    &'a edgeperf_obs::Counter,
    &'a edgeperf_obs::Counter,
    &'a edgeperf_obs::Counter,
);

fn handle_close(
    shared: &Shared,
    state: &mut WorkerState,
    cw: ClosedWindow,
    close_hist: &edgeperf_obs::Histogram,
    (windows, ev_minrtt, ev_hd, ep_opened, ep_closed): CloseCounters<'_>,
) {
    close_hist.time(|| {
        let before = [
            state.detector.event_count(DegradationMetric::MinRtt),
            state.detector.event_count(DegradationMetric::HdRatio),
        ];
        let changes = state.detector.observe(&cw);
        ev_minrtt.add(state.detector.event_count(DegradationMetric::MinRtt) - before[0]);
        ev_hd.add(state.detector.event_count(DegradationMetric::HdRatio) - before[1]);
        for c in &changes {
            if c.opened {
                ep_opened.inc();
            } else {
                ep_closed.inc();
            }
        }
        state.windows_closed += 1;
        windows.inc();
        state.closed.insert(cw.index, cw.cells);
    });
    // Eviction (and spilling) runs outside the close timing: disk I/O
    // must never pollute the close-latency histogram. Spill-then-pop
    // order keeps the invariant that every closed window is in RAM or
    // on disk at all times — a query can at worst see both copies,
    // which the merge path deduplicates (they are bit-identical).
    //
    // Degraded mode: when the store is failing (or skipping while
    // degraded), windows stay in RAM past the retention horizon so no
    // data is dropped while the disk is sick. Retention is only allowed
    // to balloon to 8× before the oldest windows are shed (counted,
    // never silent) to bound memory.
    let retention = shared.config.retention_windows;
    while state.closed.len() > retention {
        let Some(store) = &shared.store else {
            state.closed.pop_first();
            continue;
        };
        let (&index, cells) = state.closed.first_key_value().expect("non-empty map");
        let outcome = store.spill_window(index, cells);
        shared.metrics.gauge("store.degraded").set(u64::from(store.is_degraded()) as f64);
        match outcome {
            Ok(SpillOutcome::Spilled) => {
                state.closed.pop_first();
            }
            other => {
                if let Err(err) = other {
                    shared.metrics.counter("store.spill_errors").inc();
                    let mut log = shared.reject_log.lock().expect("reject log");
                    if log.len() >= 256 {
                        log.pop_front();
                    }
                    log.push_back(format!("spill window {index}: {err}"));
                }
                if state.closed.len() > retention.saturating_mul(8) {
                    state.closed.pop_first();
                    shared.metrics.counter("store.windows_shed").inc();
                } else {
                    // Keep the window in RAM; the next close retries
                    // (or probes, if degraded).
                    break;
                }
            }
        }
    }
}

/// Background compactor: folds small spilled segments into larger
/// time-sorted ones whenever the store crosses its segment threshold.
/// Each merge is one atomic manifest swap, so queries racing a
/// compaction see either the small segments or the merged one — never
/// both, never neither.
fn compactor_loop(shared: &Arc<Shared>, store: &SegmentStore) {
    let merges = shared.metrics.counter("store.compactions");
    let errors = shared.metrics.counter("store.compact_errors");
    let tick = Duration::from_millis(50);
    while !shared.supervisor_stop.load(Ordering::Acquire) {
        if !store.needs_compaction() {
            std::thread::sleep(tick);
            continue;
        }
        match store.compact_once() {
            Ok(true) => merges.inc(),
            Ok(false) => std::thread::sleep(tick),
            Err(_) => {
                errors.inc();
                std::thread::sleep(tick);
            }
        }
    }
}

fn supervisor_loop(shared: &Arc<Shared>) {
    let deadline = Duration::from_millis(shared.config.slow_worker_ms);
    let tick = Duration::from_millis((shared.config.slow_worker_ms / 4).clamp(10, 500));
    let slow_gauge = shared.metrics.gauge("live.workers.slow");
    let slow_marks = shared.metrics.counter("live.workers.slow_marks");
    let mut last_slow = 0usize;
    while !shared.supervisor_stop.load(Ordering::Acquire) {
        let slow = shared.board.overdue(deadline).len();
        slow_gauge.set(slow as f64);
        if slow > last_slow {
            slow_marks.add((slow - last_slow) as u64);
        }
        last_slow = slow;
        std::thread::sleep(tick);
    }
    slow_gauge.set(0.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_is_deterministic_and_group_stable() {
        let g1 = GroupKey {
            pop: PopId(1),
            prefix: Prefix::new(0x0A000000, 16),
            country: 2,
            continent: 1,
        };
        let g2 = GroupKey { pop: PopId(2), ..g1 };
        assert_eq!(shard_of(&g1, 4), shard_of(&g1, 4));
        // Different worker counts re-shard, but stay in range.
        for workers in 1..8 {
            assert!(shard_of(&g1, workers) < workers);
            assert!(shard_of(&g2, workers) < workers);
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = LiveSnapshot {
            drained: true,
            workers: 4,
            accepted: 100,
            rejected: 3,
            late: 1,
            groups: 7,
            windows_closed: 12,
            open_windows: 2,
            events_minrtt: 5,
            events_hdratio: 1,
            episodes_opened: 2,
            episodes_open: 1,
            reject_reasons: vec![ReasonCount { reason: "late".to_string(), count: 1 }],
            classes_minrtt: vec![ClassCount { class: "episodic".to_string(), groups: 2 }],
        };
        let json = serde_json::to_string(&snap).unwrap();
        let back: LiveSnapshot = serde_json::from_str(&json).unwrap();
        assert!(back.drained);
        assert_eq!(back.accepted, 100);
        assert_eq!(back.late, 1);
        assert_eq!(back.reject_reasons.len(), 1);
        assert_eq!(back.reject_reasons[0].reason, "late");
        assert_eq!(back.classes_minrtt[0].groups, 2);
    }

    #[test]
    fn cell_line_preserves_f64_bits_through_json() {
        let group = GroupKey {
            pop: PopId(3),
            prefix: Prefix::new(0x0A0B0000, 16),
            country: 9,
            continent: 4,
        };
        let line = CellLine {
            window: 42,
            pop: group.pop.0,
            prefix_base: group.prefix.base,
            prefix_len: group.prefix.len,
            country: group.country,
            continent: group.continent,
            rank: 1,
            relationship: "transit".to_string(),
            longer_path: true,
            more_prepended: false,
            n: 1234,
            n_tested: 900,
            bytes: 5_000_000,
            min_rtt_p50: 42.123456789012345,
            min_rtt_var: Some(0.012_345_678_901_234_568),
            hdratio_p50: Some(0.987654321098765),
            hdratio_var: None,
        };
        let json = serde_json::to_string(&line).unwrap();
        let back: CellLine = serde_json::from_str(&json).unwrap();
        assert_eq!(back, line);
        assert_eq!(back.min_rtt_p50.to_bits(), line.min_rtt_p50.to_bits());
        assert_eq!(back.min_rtt_var.unwrap().to_bits(), line.min_rtt_var.unwrap().to_bits());
        assert_eq!(back.group(), group);
    }

    #[test]
    fn stat_cells_roll_up_exactly() {
        let a = StatCell::default();
        let b = StatCell::default();
        a.accepted.fetch_add(10, Ordering::Relaxed);
        a.rejected.fetch_add(2, Ordering::Relaxed);
        a.late.fetch_add(1, Ordering::Relaxed);
        *a.reasons.lock().unwrap().entry("late").or_insert(0) += 1;
        *a.reasons.lock().unwrap().entry("parse").or_insert(0) += 1;
        b.accepted.fetch_add(5, Ordering::Relaxed);
        b.rejected.fetch_add(1, Ordering::Relaxed);
        *b.reasons.lock().unwrap().entry("late").or_insert(0) += 1;
        let mut totals = StatTotals::default();
        totals.add_cell(&a);
        totals.add_cell(&b);
        assert_eq!(totals.accepted, 15);
        assert_eq!(totals.rejected, 3);
        assert_eq!(totals.late, 1);
        assert_eq!(totals.reasons["late"], 2);
        assert_eq!(totals.reasons["parse"], 1);
    }
}
