//! `edgeperf` — estimate user performance from captured socket stats.
//!
//! ```text
//! edgeperf estimate [--target-mbps F] [--metrics] [--quarantine-file PATH] [FILE]
//!                                              JSONL sessions → JSONL verdicts
//! edgeperf demo                                print a sample input line
//! edgeperf serve [--addr A] [--workers N] [--window-ms F] [--lateness-ms F]
//!                [--queue N] [--retention N] [--spill-dir DIR]
//!                [--compact-min N] [--compact-batch N]
//!                [--idle-timeout-ms N] [--write-timeout-ms N]
//!                [--max-conns N] [--max-respawns N]
//!                [--spill-fail-threshold N] [--chaos PLAN]
//!                [--target-mbps F] [--metrics]
//!                                              live session-ingest server
//! edgeperf fleet [--addr A] [--pops N] [--workers N] [--window-ms F]
//!                [--lateness-ms F] [--retention N] [--seed S]
//!                [--target-mbps F] [--metrics]
//!                                              multi-PoP fleet coordinator
//! ```
//!
//! `serve` starts the `edgeperf-live` TCP server: JSONL `WireSession`
//! lines in, sliding event-time windows + online degradation detection
//! inside, a line-protocol query interface out (`ping`, `snapshot`,
//! `stats`, `cells`, `metrics`, `shutdown`). A connection whose first
//! bytes are the `EPB1` preamble switches to the compact binary frame
//! format instead (see `edgeperf_live::frame`; data-only, used by
//! `loadgen --wire binary`). The server prints `listening on ADDR` once
//! bound and runs until a client sends `shutdown`, then drains, prints
//! the final snapshot to stdout and exits.
//!
//! `--spill-dir DIR` enables the tiered window store: windows evicted
//! past `--retention` are spilled to columnar segments under DIR and
//! stay queryable via `cells from=.. until=..` (see
//! `edgeperf_live::store`). `--compact-min` / `--compact-batch` tune
//! the background segment compactor.
//!
//! Robustness knobs: `--idle-timeout-ms` / `--write-timeout-ms` set
//! per-connection socket deadlines (0 = off; a timed-out connection is
//! evicted and counted under `live.conns.evicted`; a resuming client
//! replays its unacked tail). `--max-conns` caps concurrent
//! connections (excess are refused, the acceptor keeps running).
//! `--max-respawns` bounds per-worker panic recoveries before the
//! worker degrades to a draining zombie. `--spill-fail-threshold` is
//! the consecutive-spill-failure count that flips the tiered store
//! into degraded (RAM-only) retention. `--chaos PLAN` injects the
//! deterministic server-side faults of an `edgeperf_live::ChaosPlan`
//! (worker panics, spill/compaction failures) — testing only.
//!
//! `fleet` hosts `--pops` in-process `serve` instances (each a full
//! live server on its own loopback port) behind a coordinator speaking
//! the `fleet *` line protocol (`ping`, `pops`, `home`, `snapshot`,
//! `cells`, `stats`, `metrics`, `kill`, `shutdown`). The coordinator
//! owns a deterministic seeded anycast catchment: clients ask
//! `fleet home BASE/LEN COUNTRY CONTINENT` for their PoP and send
//! records to that PoP directly; fleet queries fan out over the typed
//! protocol and merge per-PoP cells into a global view bit-identical
//! to a single-node run (see `edgeperf_fleet`). `fleet kill P` removes
//! a PoP mid-run and re-homes its catchment onto survivors. The
//! coordinator prints `coordinator listening on ADDR` plus one
//! `pop N listening on ADDR` line per PoP, and on `fleet shutdown`
//! drains every PoP and prints the merged final snapshot.
//!
//! `--metrics` prints an ingest accounting table (lines evaluated, rejects
//! by reason) to stderr after the run.
//!
//! `--quarantine-file PATH` additionally writes every rejected line to a
//! JSONL sidecar — `{"line":N,"reason":...,"error":...,"raw":...}` — so
//! bad telemetry can be triaged or replayed without the original file.
//! The file is only created when something was rejected.
//!
//! Input format: see `edgeperf::ingest`. With no FILE, reads stdin. Every
//! output line mirrors an input session:
//! `{"min_rtt_ms":60.0,"tested":1,"achieved":1,"hdratio":1.0}`.
//! Malformed lines produce `{"error":...,"line":N}` on stderr and are
//! skipped.

use edgeperf::core::HD_GOODPUT_BPS;
use edgeperf::fleet::{Fleet, FleetConfig};
use edgeperf::ingest::{evaluate_jsonl_observed, quarantine_jsonl, sample_line};
use edgeperf::live::{ChaosPlan, ServeBuilder};
use edgeperf::obs::{render_table, Metrics};
use edgeperf::serve::WireParser;
use std::io::Read;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("demo") => {
            println!("{}", sample_line());
        }
        Some("estimate") => {
            let mut target = HD_GOODPUT_BPS;
            let mut file: Option<String> = None;
            let mut metrics = Metrics::disabled();
            let mut quarantine_file: Option<String> = None;
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--target-mbps" => {
                        let v: f64 = it
                            .next()
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| die("--target-mbps needs a number"));
                        target = v * 1e6;
                    }
                    "--metrics" => metrics = Metrics::enabled(),
                    "--quarantine-file" => {
                        quarantine_file = Some(
                            it.next()
                                .cloned()
                                .unwrap_or_else(|| die("--quarantine-file needs a path")),
                        );
                    }
                    f if !f.starts_with('-') => file = Some(f.to_string()),
                    other => die(&format!("unknown argument {other}")),
                }
            }
            let input = match file {
                Some(path) => std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| die(&format!("read {path}: {e}"))),
                None => {
                    let mut buf = String::new();
                    std::io::stdin()
                        .read_to_string(&mut buf)
                        .unwrap_or_else(|e| die(&format!("read stdin: {e}")));
                    buf
                }
            };
            let results = evaluate_jsonl_observed(&input, target, &metrics);
            let mut errors = 0usize;
            for result in &results {
                match result {
                    Ok(v) => println!("{}", serde_json::to_string(v).unwrap()),
                    Err(e) => {
                        eprintln!(
                            "{{\"line\":{},\"error\":{}}}",
                            e.line,
                            serde_json::to_string(&e.error.to_string()).unwrap()
                        );
                        errors += 1;
                    }
                }
            }
            if let Some(path) = quarantine_file {
                if let Some(sidecar) = quarantine_jsonl(&input, &results) {
                    std::fs::write(&path, sidecar)
                        .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
                    eprintln!("edgeperf: quarantined {errors} line(s) to {path}");
                }
            }
            if metrics.is_enabled() {
                eprint!("{}", render_table(&metrics.snapshot()));
            }
            if errors > 0 {
                std::process::exit(1);
            }
        }
        Some("serve") => {
            let mut builder = ServeBuilder::new().addr("127.0.0.1:4620");
            let mut target = HD_GOODPUT_BPS;
            let mut metrics = Metrics::disabled();
            fn num(it: &mut dyn Iterator<Item = &String>, flag: &str) -> f64 {
                it.next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die(&format!("{flag} needs a number")))
            }
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--addr" => {
                        let addr =
                            it.next().cloned().unwrap_or_else(|| die("--addr needs an address"));
                        builder = builder.addr(addr);
                    }
                    "--workers" => builder = builder.workers(num(&mut it, "--workers") as usize),
                    "--window-ms" => builder = builder.window_ms(num(&mut it, "--window-ms")),
                    "--lateness-ms" => {
                        builder = builder.lateness_ms(num(&mut it, "--lateness-ms"));
                    }
                    "--queue" => builder = builder.queue_capacity(num(&mut it, "--queue") as usize),
                    "--retention" => {
                        builder = builder.retention_windows(num(&mut it, "--retention") as usize);
                    }
                    "--spill-dir" => {
                        let dir =
                            it.next().cloned().unwrap_or_else(|| die("--spill-dir needs a path"));
                        builder = builder.spill_dir(dir);
                    }
                    "--compact-min" => {
                        builder =
                            builder.compact_min_segments(num(&mut it, "--compact-min") as usize);
                    }
                    "--compact-batch" => {
                        builder = builder.compact_batch(num(&mut it, "--compact-batch") as usize);
                    }
                    "--idle-timeout-ms" => {
                        builder = builder.idle_timeout_ms(num(&mut it, "--idle-timeout-ms") as u64);
                    }
                    "--write-timeout-ms" => {
                        builder =
                            builder.write_timeout_ms(num(&mut it, "--write-timeout-ms") as u64);
                    }
                    "--max-conns" => {
                        builder = builder.max_connections(num(&mut it, "--max-conns") as usize);
                    }
                    "--max-respawns" => {
                        builder =
                            builder.max_worker_respawns(num(&mut it, "--max-respawns") as u32);
                    }
                    "--spill-fail-threshold" => {
                        builder = builder
                            .spill_fail_threshold(num(&mut it, "--spill-fail-threshold") as u32);
                    }
                    "--chaos" => {
                        let spec =
                            it.next().cloned().unwrap_or_else(|| die("--chaos needs a plan"));
                        let plan = ChaosPlan::parse(&spec)
                            .unwrap_or_else(|e| die(&format!("--chaos: {e}")));
                        builder = builder.chaos(plan);
                    }
                    "--target-mbps" => target = num(&mut it, "--target-mbps") * 1e6,
                    "--metrics" => metrics = Metrics::enabled(),
                    other => die(&format!("unknown argument {other}")),
                }
            }
            let parser = Arc::new(WireParser::new(target));
            let handle = builder
                .metrics(&metrics)
                .start(parser)
                .unwrap_or_else(|e| die(&format!("serve: {e}")));
            println!("listening on {}", handle.addr());
            let snapshot = handle.join();
            println!("{}", serde_json::to_string(&snapshot).unwrap());
            if metrics.is_enabled() {
                eprint!("{}", render_table(&metrics.snapshot()));
            }
        }
        Some("fleet") => {
            let mut config =
                FleetConfig { addr: "127.0.0.1:4630".to_string(), ..Default::default() };
            let mut target = HD_GOODPUT_BPS;
            let mut metrics = Metrics::disabled();
            fn num(it: &mut dyn Iterator<Item = &String>, flag: &str) -> f64 {
                it.next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die(&format!("{flag} needs a number")))
            }
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--addr" => {
                        config.addr =
                            it.next().cloned().unwrap_or_else(|| die("--addr needs an address"));
                    }
                    "--pops" => config.pops = num(&mut it, "--pops") as u16,
                    "--workers" => config.workers = num(&mut it, "--workers") as usize,
                    "--window-ms" => config.window_ms = num(&mut it, "--window-ms"),
                    "--lateness-ms" => config.lateness_ms = num(&mut it, "--lateness-ms"),
                    "--retention" => {
                        config.retention_windows = num(&mut it, "--retention") as usize;
                    }
                    "--seed" => config.seed = num(&mut it, "--seed") as u64,
                    "--target-mbps" => target = num(&mut it, "--target-mbps") * 1e6,
                    "--metrics" => metrics = Metrics::enabled(),
                    other => die(&format!("unknown argument {other}")),
                }
            }
            let parser = Arc::new(WireParser::new(target));
            let handle = Fleet::start(&config, parser, &metrics)
                .unwrap_or_else(|e| die(&format!("fleet: {e}")));
            println!("coordinator listening on {}", handle.addr());
            for (pop, addr) in handle.pop_addrs().iter().enumerate() {
                println!("pop {pop} listening on {addr}");
            }
            let snapshot = handle.join();
            println!("{}", serde_json::to_string(&snapshot).unwrap());
            if metrics.is_enabled() {
                eprint!("{}", render_table(&metrics.snapshot()));
            }
        }
        _ => {
            eprintln!(
                "usage: edgeperf estimate [--target-mbps F] [--metrics] [--quarantine-file PATH] [FILE] | edgeperf serve [--addr A] [--workers N] [--spill-dir DIR] | edgeperf fleet [--addr A] [--pops N] | edgeperf demo"
            );
            std::process::exit(2);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("edgeperf: {msg}");
    std::process::exit(2);
}
