//! The `edgeperf serve` wire format: the bridge between the typed-error
//! JSONL ingest (this crate's [`crate::ingest`]) and the live server
//! (`edgeperf-live`).
//!
//! A wire line is one [`WireSession`] per line: the raw socket-statistics
//! session ([`SessionIn`], exactly as accepted by `edgeperf estimate`)
//! plus the event timestamp and routing annotations the live windowing
//! needs. [`WireParser`] runs the core estimator on each line — the same
//! `SessionIn::evaluate` the offline CLI uses — and yields the
//! `LiveRecord` the server folds into its windows, so live summaries are
//! produced by the very same estimator code path.

use crate::ingest::SessionIn;
use edgeperf_analysis::GroupKey;
use edgeperf_core::EdgeperfError;
use edgeperf_live::{relationship_from_label, LiveRecord};
use edgeperf_routing::{PopId, Prefix};
use serde::{Deserialize, Serialize};

/// One session on the wire: event time + routing annotations + the raw
/// estimator input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireSession {
    /// Event time in milliseconds since the stream epoch.
    pub ts_ms: f64,
    /// Serving PoP id.
    pub pop: u16,
    /// Client BGP prefix base address.
    pub prefix_base: u32,
    /// Client BGP prefix length.
    pub prefix_len: u8,
    /// Client country id.
    pub country: u16,
    /// Client continent id.
    pub continent: u8,
    /// Rank of the pinned egress route (0 = policy-preferred).
    #[serde(default)]
    pub route_rank: u8,
    /// Relationship label: `private`, `public` or `transit`.
    pub relationship: String,
    /// The pinned route's AS path is longer than the preferred route's.
    #[serde(default)]
    pub longer_path: bool,
    /// The pinned route is prepended more than the preferred route.
    #[serde(default)]
    pub more_prepended: bool,
    /// The captured socket statistics, as in `edgeperf estimate` input.
    pub session: SessionIn,
}

impl WireSession {
    /// The group key encoded in this line.
    pub fn group(&self) -> GroupKey {
        GroupKey {
            pop: PopId(self.pop),
            prefix: Prefix::new(self.prefix_base, self.prefix_len),
            country: self.country,
            continent: self.continent,
        }
    }

    /// Serialize to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("wire session serializes")
    }
}

/// Run the core estimator on an already-parsed [`WireSession`] and build
/// the [`LiveRecord`] the live server windows.
///
/// This is *the* estimator entry point for both wire formats: the JSONL
/// path reaches it through [`WireParser::parse_line`], and a binary
/// client (the load generator's `--wire binary` mode) calls it locally
/// before encoding frames — which is exactly why binary-ingested cells
/// stay bit-identical to JSONL-ingested ones: the f64s come from the
/// same code on either side of the socket.
pub fn record_from_wire(wire: &WireSession, target_bps: f64) -> Result<LiveRecord, EdgeperfError> {
    let relationship = relationship_from_label(&wire.relationship)?;
    let verdict = wire.session.evaluate(target_bps)?;
    let bytes = wire.session.responses.iter().map(|r| r.bytes).sum();
    Ok(LiveRecord {
        ts_ms: wire.ts_ms,
        group: wire.group(),
        route_rank: wire.route_rank,
        relationship,
        longer_path: wire.longer_path,
        more_prepended: wire.more_prepended,
        min_rtt_ms: verdict.min_rtt_ms,
        hdratio: verdict.hdratio,
        bytes,
    })
}

/// [`edgeperf_live::LineParser`] over the JSONL wire format: parse,
/// run the core HDratio/MinRTT estimator, reject with the same typed
/// errors (and therefore the same `ingest.reject.<reason>` labels) as
/// the offline path.
pub struct WireParser {
    /// HD goodput target in bits per second.
    pub target_bps: f64,
}

impl WireParser {
    /// Parser evaluating sessions at `target_bps`.
    pub fn new(target_bps: f64) -> WireParser {
        WireParser { target_bps }
    }

    /// Parse and evaluate one wire line.
    pub fn parse_line(&self, line: &str) -> Result<LiveRecord, EdgeperfError> {
        let wire: WireSession = serde_json::from_str(line)
            .map_err(|e| EdgeperfError::Json { message: e.to_string() })?;
        record_from_wire(&wire, self.target_bps)
    }
}

impl edgeperf_live::LineParser for WireParser {
    fn parse(&self, line: &str) -> Result<LiveRecord, EdgeperfError> {
        self.parse_line(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::sample_line;
    use edgeperf_core::HD_GOODPUT_BPS;
    use edgeperf_routing::Relationship;

    fn wire(ts_ms: f64) -> WireSession {
        WireSession {
            ts_ms,
            pop: 3,
            prefix_base: 0x0A000000,
            prefix_len: 16,
            country: 7,
            continent: 2,
            route_rank: 0,
            relationship: "private".to_string(),
            longer_path: false,
            more_prepended: false,
            session: serde_json::from_str(&sample_line()).unwrap(),
        }
    }

    #[test]
    fn wire_lines_round_trip_through_the_parser() {
        let w = wire(1234.5);
        let parser = WireParser::new(HD_GOODPUT_BPS);
        let rec = parser.parse_line(&w.to_line()).unwrap();
        assert_eq!(rec.ts_ms, 1234.5);
        assert_eq!(rec.group, w.group());
        assert_eq!(rec.relationship, Relationship::PrivatePeer);
        assert_eq!(rec.min_rtt_ms, 60.0);
        assert_eq!(rec.hdratio, Some(1.0));
        assert_eq!(rec.bytes, 36_000);
    }

    #[test]
    fn estimator_rejects_flow_through_with_typed_reasons() {
        let parser = WireParser::new(HD_GOODPUT_BPS);
        assert_eq!(parser.parse_line("not json").unwrap_err().reason(), "json");

        let mut w = wire(0.0);
        w.relationship = "imaginary".to_string();
        assert_eq!(parser.parse_line(&w.to_line()).unwrap_err().reason(), "json");

        let mut w = wire(0.0);
        w.session.min_rtt_ms = -1.0;
        assert_eq!(parser.parse_line(&w.to_line()).unwrap_err().reason(), "invalid_min_rtt");
    }
}
