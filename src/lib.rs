//! # edgeperf
//!
//! An open-source reproduction of the measurement system behind
//! *"Internet Performance from Facebook's Edge"* (IMC 2019): server-side
//! passive estimation of user latency (MinRTT) and achievable goodput
//! (HDratio), an aggregation/comparison pipeline with distribution-free
//! statistics, and a synthetic-Internet substrate to exercise all of it.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! - [`core`] — the paper's contribution: `Gtestable`, `Tmodel`, HDratio,
//!   MinRTT tracking, and the load-balancer instrumentation model.
//! - [`stats`] — t-digest, Price–Bonett median CIs, weighted CDFs.
//! - [`tcp`] — the TCP sender/receiver model (Reno, CUBIC, delayed ACKs).
//! - [`netsim`] — deterministic discrete-event packet simulator and the
//!   round-based "fastsim" used for fleet-scale studies.
//! - [`routing`] — prefixes, AS paths, the 4-tiebreaker egress policy,
//!   and the Edge-Fabric-style route pinning used for alternate-route
//!   measurement.
//! - [`workload`] — synthetic HTTP session/transaction generators matched
//!   to the paper's published traffic distributions.
//! - [`world`] — a seeded synthetic Internet (PoPs, ASes, prefixes, path
//!   ground truth with diurnal/episodic dynamics).
//! - [`analysis`] — user groups, 15-minute windows, degradation and
//!   routing-opportunity detection, temporal classification.
//! - [`obs`] — pipeline observability: the lock-light metrics registry,
//!   phase spans, and JSON-serializable snapshots behind `--metrics-json`.
//! - [`live`] — the streaming session-ingest server (`edgeperf serve`):
//!   sliding event-time windows over the same estimator and statistics,
//!   with online degradation detection. The wire format lives in
//!   [`serve`].
//! - [`fleet`] — the multi-PoP tier (`edgeperf fleet`): N live servers
//!   behind an anycast catchment coordinator, with bit-faithful global
//!   merge and mid-run PoP failover.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the one-paragraph version:
//!
//! ```
//! use edgeperf::core::{Estimator, HD_GOODPUT_BPS, MILLISECOND};
//! use edgeperf::core::instrument::Transaction;
//!
//! // One measured transaction: ~36 kB response, Wnic = 10 segments,
//! // MinRTT 60 ms, measured transfer time 135 ms (delayed-ACK corrected).
//! let txn = Transaction {
//!     bytes_full: 36_000,
//!     bytes_measured: 34_760, // minus the final packet (§3.2.5)
//!     ttotal: 135 * MILLISECOND,
//!     wnic: 14_600,
//!     eligible: true,
//!     coalesced: 1,
//! };
//! let mut est = Estimator::new(HD_GOODPUT_BPS);
//! let outcome = est.evaluate(&txn, 60 * MILLISECOND);
//! assert!(outcome.testable); // big enough to exercise 2.5 Mbps
//! assert!(outcome.achieved); // and it did
//! ```

pub mod ingest;
pub mod serve;

pub use edgeperf_analysis as analysis;
pub use edgeperf_core as core;
pub use edgeperf_fleet as fleet;
pub use edgeperf_live as live;
pub use edgeperf_netsim as netsim;
pub use edgeperf_obs as obs;
pub use edgeperf_routing as routing;
pub use edgeperf_stats as stats;
pub use edgeperf_tcp as tcp;
pub use edgeperf_workload as workload;
pub use edgeperf_world as world;
