//! JSON ingestion for the `edgeperf` CLI: turn externally captured
//! socket statistics into [`edgeperf_core`] observations and verdicts.
//!
//! The wire format is one JSON object per line (JSONL), one line per HTTP
//! session. Times are in **milliseconds** relative to any epoch (only
//! differences matter); `wnic` is in bytes. A deployment would populate
//! these fields from `getsockopt(TCP_INFO)` plus socket/NIC timestamps —
//! see the paper's §2.2.2.
//!
//! ```json
//! {"min_rtt_ms": 42.0, "responses": [
//!   {"bytes": 36000, "issued_at_ms": 0.0, "first_tx_ms": 0.2,
//!    "wnic": 14600, "second_last_ack_ms": 135.0, "full_ack_ms": 140.0,
//!    "last_packet_bytes": 1240, "bytes_in_flight_at_write": 0,
//!    "prev_unsent_at_write": false}
//! ]}
//! ```

use edgeperf_core::{
    session_hdratio, EdgeperfError, HttpVersion, LineError, ResponseObs, SessionObs, MILLISECOND,
};
use edgeperf_obs::Metrics;
use serde::{Deserialize, Serialize};

/// One response as captured by external instrumentation.
#[derive(Debug, Clone, Deserialize, Serialize)]
pub struct ResponseIn {
    /// Response size in bytes.
    pub bytes: u64,
    /// When the application wrote the response (ms).
    pub issued_at_ms: f64,
    /// When the first byte reached the NIC (ms); absent if it never did.
    #[serde(default)]
    pub first_tx_ms: Option<f64>,
    /// Congestion window (bytes) at first transmission.
    #[serde(default)]
    pub wnic: Option<u32>,
    /// Arrival of the ACK covering the second-to-last packet (ms).
    #[serde(default)]
    pub second_last_ack_ms: Option<f64>,
    /// Arrival of the ACK covering the whole response (ms).
    #[serde(default)]
    pub full_ack_ms: Option<f64>,
    /// Size of the final packet in bytes.
    #[serde(default)]
    pub last_packet_bytes: Option<u32>,
    /// Bytes still unacknowledged when the write was issued.
    #[serde(default)]
    pub bytes_in_flight_at_write: u64,
    /// A previous response still had unsent bytes at this write.
    #[serde(default)]
    pub prev_unsent_at_write: bool,
}

/// One session line in the input.
#[derive(Debug, Clone, Deserialize, Serialize)]
pub struct SessionIn {
    /// Kernel MinRTT at session close, milliseconds.
    pub min_rtt_ms: f64,
    /// Responses in write order.
    pub responses: Vec<ResponseIn>,
    /// "h1" or "h2" (defaults to h2).
    #[serde(default)]
    pub http: Option<String>,
    /// Session duration in milliseconds (defaults to the measurement span).
    #[serde(default)]
    pub duration_ms: Option<f64>,
}

/// Verdict emitted per session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerdictOut {
    /// Session MinRTT echoed back, ms.
    pub min_rtt_ms: f64,
    /// Transactions able to test the target goodput.
    pub tested: u32,
    /// Of those, transactions that achieved it.
    pub achieved: u32,
    /// HDratio, if anything tested.
    pub hdratio: Option<f64>,
}

/// Convert a millisecond timestamp to internal ticks, rejecting values a
/// sane capture can never produce. Clamping negatives to zero (the old
/// behavior) silently reordered events and corrupted downstream goodput
/// estimates; bad telemetry must surface as a per-line error instead.
fn ms(v: f64, field: &str) -> Result<u64, EdgeperfError> {
    if !v.is_finite() {
        return Err(EdgeperfError::NonFinite { field: field.to_string(), value: v });
    }
    if v < 0.0 {
        return Err(EdgeperfError::NegativeTimestamp { field: field.to_string(), value: v });
    }
    Ok((v * MILLISECOND as f64) as u64)
}

impl SessionIn {
    /// Convert to the core observation type.
    ///
    /// Fails when any timestamp is negative or non-finite, or when the
    /// session duration cannot be determined (`duration_ms` absent and no
    /// response carries `full_ack_ms`) — previously such sessions were
    /// given duration 0, which made every transaction look infinitely
    /// fast to rate-based checks.
    pub fn to_obs(&self) -> Result<SessionObs, EdgeperfError> {
        let responses = self
            .responses
            .iter()
            .enumerate()
            .map(|(i, r)| {
                Ok(ResponseObs {
                    bytes: r.bytes,
                    issued_at: ms(r.issued_at_ms, &format!("responses[{i}].issued_at_ms"))?,
                    first_tx: r
                        .first_tx_ms
                        .map(|t| {
                            Ok::<_, EdgeperfError>((
                                ms(t, &format!("responses[{i}].first_tx_ms"))?,
                                r.wnic.unwrap_or(0),
                            ))
                        })
                        .transpose()?,
                    t_second_last_ack: r
                        .second_last_ack_ms
                        .map(|t| ms(t, &format!("responses[{i}].second_last_ack_ms")))
                        .transpose()?,
                    t_full_ack: r
                        .full_ack_ms
                        .map(|t| ms(t, &format!("responses[{i}].full_ack_ms")))
                        .transpose()?,
                    last_packet_bytes: r.last_packet_bytes,
                    bytes_in_flight_at_write: r.bytes_in_flight_at_write,
                    prev_unsent_at_write: r.prev_unsent_at_write,
                })
            })
            .collect::<Result<Vec<_>, EdgeperfError>>()?;
        if !self.min_rtt_ms.is_finite() || self.min_rtt_ms < 0.0 {
            return Err(EdgeperfError::InvalidMinRtt { value: self.min_rtt_ms });
        }
        let duration_ms = match self.duration_ms {
            Some(d) => d,
            None => {
                let span = self
                    .responses
                    .iter()
                    .filter_map(|r| r.full_ack_ms)
                    .fold(f64::NEG_INFINITY, f64::max);
                if span.is_finite() {
                    span
                } else {
                    return Err(EdgeperfError::UnknownDuration);
                }
            }
        };
        Ok(SessionObs {
            responses,
            min_rtt: (self.min_rtt_ms > 0.0)
                .then(|| ms(self.min_rtt_ms, "min_rtt_ms"))
                .transpose()?,
            http: match self.http.as_deref() {
                Some("h1") | Some("http/1.1") => HttpVersion::H1,
                _ => HttpVersion::H2,
            },
            duration: ms(duration_ms, "duration_ms")?,
        })
    }

    /// Evaluate the session at `target_bps`.
    pub fn evaluate(&self, target_bps: f64) -> Result<VerdictOut, EdgeperfError> {
        let obs = self.to_obs()?;
        Ok(match session_hdratio(&obs, target_bps) {
            Some(v) => VerdictOut {
                min_rtt_ms: self.min_rtt_ms,
                tested: v.tested,
                achieved: v.achieved,
                hdratio: v.hdratio(),
            },
            None => {
                VerdictOut { min_rtt_ms: self.min_rtt_ms, tested: 0, achieved: 0, hdratio: None }
            }
        })
    }
}

/// One evaluated input line: a verdict, or the typed per-line error.
pub type LineResult = Result<VerdictOut, LineError>;

/// Evaluate a stream of JSONL sessions; invalid lines yield [`LineError`]
/// entries carrying the 1-based line number and a typed cause.
pub fn evaluate_jsonl(input: &str, target_bps: f64) -> Vec<LineResult> {
    evaluate_jsonl_observed(input, target_bps, &Metrics::disabled())
}

/// [`evaluate_jsonl`] with parse accounting: counts every evaluated line
/// into `ingest.lines` and each reject into `ingest.reject.<reason>`
/// (reasons from [`EdgeperfError::reason`]).
pub fn evaluate_jsonl_observed(input: &str, target_bps: f64, metrics: &Metrics) -> Vec<LineResult> {
    let lines = metrics.counter("ingest.lines");
    input
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, line)| {
            lines.inc();
            serde_json::from_str::<SessionIn>(line)
                .map_err(|e| EdgeperfError::Json { message: e.to_string() })
                .and_then(|s| s.evaluate(target_bps))
                .map_err(|error| {
                    metrics.counter(&format!("ingest.reject.{}", error.reason())).inc();
                    LineError { line: i + 1, error }
                })
        })
        .collect()
}

/// Render one quarantine-sidecar entry for a rejected input line: the
/// 1-based line number, the typed reason (stable, machine-matchable),
/// the human-readable error, and the offending raw line — everything
/// needed to replay or triage the reject without the original file.
pub fn quarantine_line(raw: &str, err: &LineError) -> String {
    let v = serde_json::Value::Object(vec![
        ("line".to_string(), serde_json::Value::Num(err.line as f64)),
        ("reason".to_string(), serde_json::Value::Str(err.error.reason().to_string())),
        ("error".to_string(), serde_json::Value::Str(err.error.to_string())),
        ("raw".to_string(), serde_json::Value::Str(raw.to_string())),
    ]);
    serde_json::to_string(&v).expect("quarantine entry serializes")
}

/// Build the quarantine sidecar (JSONL, one entry per rejected line) for
/// an already-evaluated input. Returns `None` when nothing was rejected.
pub fn quarantine_jsonl(input: &str, results: &[LineResult]) -> Option<String> {
    let lines: Vec<&str> = input.lines().collect();
    let mut out = String::new();
    for err in results.iter().filter_map(|r| r.as_ref().err()) {
        let raw = lines.get(err.line.saturating_sub(1)).copied().unwrap_or("");
        out.push_str(&quarantine_line(raw, err));
        out.push('\n');
    }
    (!out.is_empty()).then_some(out)
}

/// A sample input line (used by `edgeperf demo` and the docs).
pub fn sample_line() -> String {
    let s = SessionIn {
        min_rtt_ms: 60.0,
        http: Some("h2".into()),
        duration_ms: Some(12_000.0),
        responses: vec![ResponseIn {
            bytes: 36_000,
            issued_at_ms: 0.0,
            first_tx_ms: Some(0.2),
            wnic: Some(14_600),
            second_last_ack_ms: Some(135.0),
            full_ack_ms: Some(140.0),
            last_packet_bytes: Some(1_240),
            bytes_in_flight_at_write: 0,
            prev_unsent_at_write: false,
        }],
    };
    serde_json::to_string(&s).expect("sample serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeperf_core::HD_GOODPUT_BPS;

    #[test]
    fn sample_line_round_trips_and_achieves_hd() {
        let line = sample_line();
        let out = evaluate_jsonl(&line, HD_GOODPUT_BPS);
        assert_eq!(out.len(), 1);
        let v = out[0].as_ref().expect("valid sample");
        assert_eq!(v.tested, 1);
        assert_eq!(v.achieved, 1);
        assert_eq!(v.hdratio, Some(1.0));
    }

    #[test]
    fn slow_session_fails_hd() {
        let mut s: SessionIn = serde_json::from_str(&sample_line()).unwrap();
        s.responses[0].second_last_ack_ms = Some(900.0); // took forever
        let v = s.evaluate(HD_GOODPUT_BPS).unwrap();
        assert_eq!(v.tested, 1);
        assert_eq!(v.achieved, 0);
    }

    #[test]
    fn tiny_session_tests_nothing() {
        let mut s: SessionIn = serde_json::from_str(&sample_line()).unwrap();
        s.responses[0].bytes = 2_000;
        s.responses[0].last_packet_bytes = Some(540);
        let v = s.evaluate(HD_GOODPUT_BPS).unwrap();
        assert_eq!(v.tested, 0);
        assert_eq!(v.hdratio, None);
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let input = format!("{}\nnot json\n\n{}", sample_line(), sample_line());
        let out = evaluate_jsonl(&input, HD_GOODPUT_BPS);
        assert_eq!(out.len(), 3); // blank line skipped
        assert!(out[0].is_ok());
        let err = out[1].as_ref().unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.error.reason(), "json");
        assert!(out[2].is_ok());
    }

    #[test]
    fn missing_optionals_default_sanely() {
        // With an explicit duration, absent per-response fields are fine:
        // the session parses but nothing is measurable.
        let line = r#"{"min_rtt_ms": 30.0, "duration_ms": 1000.0, "responses": [{"bytes": 5000, "issued_at_ms": 0.0}]}"#;
        let out = evaluate_jsonl(line, HD_GOODPUT_BPS);
        let v = out[0].as_ref().unwrap();
        // No transmission endpoints → nothing measurable.
        assert_eq!(v.tested, 0);
    }

    #[test]
    fn undeterminable_duration_is_rejected() {
        // No duration_ms and no full_ack_ms anywhere: the old code
        // defaulted the duration to 0; now it is a per-line error.
        let line = r#"{"min_rtt_ms": 30.0, "responses": [{"bytes": 5000, "issued_at_ms": 0.0}]}"#;
        let out = evaluate_jsonl(line, HD_GOODPUT_BPS);
        let err = out[0].as_ref().unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.error, EdgeperfError::UnknownDuration);
        assert!(err.to_string().contains("duration"), "unexpected message: {err}");
    }

    #[test]
    fn negative_timestamps_are_rejected() {
        let mut s: SessionIn = serde_json::from_str(&sample_line()).unwrap();
        s.responses[0].issued_at_ms = -3.0;
        let err = s.evaluate(HD_GOODPUT_BPS).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("issued_at_ms") && msg.contains("negative"),
            "unexpected message: {msg}"
        );
        assert_eq!(err.reason(), "negative_timestamp");

        let mut s: SessionIn = serde_json::from_str(&sample_line()).unwrap();
        s.responses[0].full_ack_ms = Some(-0.5);
        let err = s.evaluate(HD_GOODPUT_BPS).unwrap_err();
        assert!(err.to_string().contains("full_ack_ms"), "unexpected message: {err}");

        let mut s: SessionIn = serde_json::from_str(&sample_line()).unwrap();
        s.min_rtt_ms = -1.0;
        assert!(s.evaluate(HD_GOODPUT_BPS).is_err());

        let mut s: SessionIn = serde_json::from_str(&sample_line()).unwrap();
        s.duration_ms = Some(-10.0);
        assert!(s.evaluate(HD_GOODPUT_BPS).is_err());
    }

    #[test]
    fn rejected_lines_carry_line_numbers() {
        let bad = r#"{"min_rtt_ms": 30.0, "responses": [{"bytes": 1, "issued_at_ms": -1.0}]}"#;
        let input = format!("{}\n{bad}", sample_line());
        let out = evaluate_jsonl(&input, HD_GOODPUT_BPS);
        assert!(out[0].is_ok());
        let err = out[1].as_ref().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("negative"), "unexpected message: {err}");
    }

    /// CLI stderr messages are part of the observable interface: the typed
    /// errors must render exactly what the `String` era rendered.
    #[test]
    fn typed_errors_render_legacy_messages() {
        let mut s: SessionIn = serde_json::from_str(&sample_line()).unwrap();
        s.responses[0].issued_at_ms = -3.0;
        assert_eq!(
            s.evaluate(HD_GOODPUT_BPS).unwrap_err().to_string(),
            "responses[0].issued_at_ms: negative timestamp -3"
        );

        let mut s: SessionIn = serde_json::from_str(&sample_line()).unwrap();
        s.min_rtt_ms = -1.0;
        assert_eq!(
            s.evaluate(HD_GOODPUT_BPS).unwrap_err().to_string(),
            "min_rtt_ms: invalid value -1"
        );

        let mut s: SessionIn = serde_json::from_str(&sample_line()).unwrap();
        s.responses[0].first_tx_ms = Some(f64::NAN);
        assert_eq!(
            s.evaluate(HD_GOODPUT_BPS).unwrap_err().to_string(),
            "responses[0].first_tx_ms: non-finite value NaN"
        );
    }

    #[test]
    fn observed_ingest_counts_rejects_by_reason() {
        let metrics = Metrics::enabled();
        let bad_ts = r#"{"min_rtt_ms": 30.0, "responses": [{"bytes": 1, "issued_at_ms": -1.0}]}"#;
        let no_dur = r#"{"min_rtt_ms": 30.0, "responses": [{"bytes": 5, "issued_at_ms": 0.0}]}"#;
        let input = format!("{}\nnot json\n{bad_ts}\n{no_dur}", sample_line());
        let out = evaluate_jsonl_observed(&input, HD_GOODPUT_BPS, &metrics);
        assert_eq!(out.len(), 4);
        let snap = metrics.snapshot();
        assert_eq!(snap.counters["ingest.lines"], 4);
        assert_eq!(snap.counters["ingest.reject.json"], 1);
        assert_eq!(snap.counters["ingest.reject.negative_timestamp"], 1);
        assert_eq!(snap.counters["ingest.reject.unknown_duration"], 1);
    }

    #[test]
    fn quarantine_sidecar_carries_raw_lines_and_reasons() {
        let bad_ts = r#"{"min_rtt_ms": 30.0, "responses": [{"bytes": 1, "issued_at_ms": -1.0}]}"#;
        let input = format!("{}\nnot json\n{bad_ts}", sample_line());
        let out = evaluate_jsonl(&input, HD_GOODPUT_BPS);
        let sidecar = quarantine_jsonl(&input, &out).expect("two rejects");
        let entries: Vec<serde_json::Value> =
            sidecar.lines().map(|l| serde_json::parse(l).expect("valid JSONL")).collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].get("line"), Some(&serde_json::Value::Num(2.0)));
        assert_eq!(entries[0].get("reason"), Some(&serde_json::Value::Str("json".to_string())));
        assert_eq!(entries[0].get("raw"), Some(&serde_json::Value::Str("not json".to_string())));
        assert_eq!(
            entries[1].get("reason"),
            Some(&serde_json::Value::Str("negative_timestamp".to_string()))
        );
        assert_eq!(entries[1].get("raw"), Some(&serde_json::Value::Str(bad_ts.to_string())));

        // Clean input → no sidecar at all.
        assert!(quarantine_jsonl(&sample_line(), &evaluate_jsonl(&sample_line(), HD_GOODPUT_BPS))
            .is_none());
    }

    #[test]
    fn http_version_parsing() {
        let mut s: SessionIn = serde_json::from_str(&sample_line()).unwrap();
        s.http = Some("h1".into());
        assert_eq!(s.to_obs().unwrap().http, HttpVersion::H1);
        s.http = None;
        assert_eq!(s.to_obs().unwrap().http, HttpVersion::H2);
    }

    #[test]
    fn zero_min_rtt_is_untestable_but_not_an_error() {
        let mut s: SessionIn = serde_json::from_str(&sample_line()).unwrap();
        s.min_rtt_ms = 0.0;
        let v = s.evaluate(HD_GOODPUT_BPS).unwrap();
        assert_eq!(v.tested, 0);
    }
}
