//! Quickstart: estimate user-perceived performance from server-side
//! observations — no client cooperation, no active probes.
//!
//! Run with: `cargo run --example quickstart`

use edgeperf::core::{
    assemble_transactions, session_hdratio, Estimator, HttpVersion, MinRttTracker, ResponseObs,
    SessionObs, HD_GOODPUT_BPS, MILLISECOND, SECOND,
};

fn main() {
    // ── 1. Per-transaction estimation ────────────────────────────────
    // A load balancer observed one response: 36 kB, first byte hit the
    // NIC with a 14.6 kB congestion window, and the ACK covering the
    // second-to-last packet arrived 135 ms later. Connection MinRTT was
    // 60 ms.
    let txn = edgeperf::core::instrument::Transaction {
        bytes_full: 36_000,
        bytes_measured: 34_760, // last packet excluded (delayed-ACK immunity)
        ttotal: 135 * MILLISECOND,
        wnic: 14_600,
        eligible: true,
        coalesced: 1,
    };
    let mut est = Estimator::new(HD_GOODPUT_BPS);
    let outcome = est.evaluate(&txn, 60 * MILLISECOND);
    println!("transaction can test {:.2} Mbps", outcome.gtestable_bps / 1e6);
    println!("  testable for HD (2.5 Mbps): {}", outcome.testable);
    println!("  achieved HD:                {}", outcome.achieved);

    // ── 2. Whole-session HDratio from raw response observations ─────
    // Three responses; the second was written back-to-back with the
    // first (HTTP/2), so the instrumentation coalesces them.
    let mk = |bytes: u64, t0: u64, t2: u64| ResponseObs {
        bytes,
        issued_at: t0,
        first_tx: Some((t0, 14_600)),
        t_second_last_ack: Some(t2),
        t_full_ack: Some(t2 + 5 * MILLISECOND),
        last_packet_bytes: Some(((bytes - 1) % 1460 + 1) as u32),
        bytes_in_flight_at_write: 0,
        prev_unsent_at_write: false,
    };
    let mut r2 = mk(20_000, 10 * MILLISECOND, 250 * MILLISECOND);
    r2.first_tx = None; // still queued behind response 1
    r2.prev_unsent_at_write = true;
    r2.bytes_in_flight_at_write = 30_000;
    let session = SessionObs {
        responses: vec![
            mk(80_000, 0, 250 * MILLISECOND), // coalesced with r2 below
            r2,
            mk(120_000, 5 * SECOND, 5 * SECOND + 400 * MILLISECOND),
        ],
        min_rtt: Some(60 * MILLISECOND),
        http: HttpVersion::H2,
        duration: 30 * SECOND,
    };
    let txns = assemble_transactions(&session.responses);
    println!("\n{} responses → {} measurable transactions", session.responses.len(), txns.len());
    let verdict = session_hdratio(&session, HD_GOODPUT_BPS).expect("has MinRTT");
    println!(
        "session HDratio = {:?} ({} tested, {} achieved)",
        verdict.hdratio(),
        verdict.tested,
        verdict.achieved
    );

    // ── 3. Kernel-style windowed MinRTT ──────────────────────────────
    let mut tracker = MinRttTracker::new(300 * SECOND); // 5-minute window
    for (t, rtt_ms) in [(0u64, 48u64), (30, 42), (60, 55), (90, 43)] {
        tracker.on_sample(t * SECOND, rtt_ms * MILLISECOND);
    }
    println!(
        "\nMinRTT over the window: {} ms",
        tracker.current(100 * SECOND).unwrap() / MILLISECOND
    );
}
