//! Can a user population stream HD video? A capacity-planning scenario:
//! simulate realistic HTTP sessions over access-network profiles modeled
//! on different regions and report the HD-capability mix the estimator
//! would measure — the §4 analysis in miniature.
//!
//! Run with: `cargo run --release --example video_capability`

use edgeperf::core::{session_hdratio, HD_GOODPUT_BPS, MILLISECOND};
use edgeperf::netsim::PathState;
use edgeperf::workload::distributions::standard_normal;
use edgeperf::workload::WorkloadConfig;
use edgeperf::world::runner::simulate_session;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

struct Profile {
    name: &'static str,
    rtt_ms: f64,
    bw_median_mbps: f64,
    bw_sigma: f64,
    loss: f64,
    jitter_ms: u64,
}

fn main() {
    let profiles = [
        Profile {
            name: "EU fibre metro",
            rtt_ms: 18.0,
            bw_median_mbps: 11.0,
            bw_sigma: 1.0,
            loss: 0.0005,
            jitter_ms: 3,
        },
        Profile {
            name: "NA cable suburb",
            rtt_ms: 25.0,
            bw_median_mbps: 12.0,
            bw_sigma: 1.0,
            loss: 0.001,
            jitter_ms: 4,
        },
        Profile {
            name: "SA mobile",
            rtt_ms: 48.0,
            bw_median_mbps: 5.5,
            bw_sigma: 1.2,
            loss: 0.004,
            jitter_ms: 7,
        },
        Profile {
            name: "AS DSL",
            rtt_ms: 42.0,
            bw_median_mbps: 5.8,
            bw_sigma: 1.2,
            loss: 0.003,
            jitter_ms: 8,
        },
        Profile {
            name: "AF mobile",
            rtt_ms: 58.0,
            bw_median_mbps: 4.4,
            bw_sigma: 1.2,
            loss: 0.006,
            jitter_ms: 10,
        },
    ];

    let workload = WorkloadConfig::default();
    println!("{:<18} {:>8} {:>8} {:>8} {:>9}", "profile", "HD=1", "partial", "HD=0", "untested");
    for p in &profiles {
        let mut rng = ChaCha12Rng::seed_from_u64(0xFACE);
        let (mut full, mut partial, mut zero, mut untested) = (0u32, 0u32, 0u32, 0u32);
        let n = 3_000;
        for _ in 0..n {
            // Per-user access draw around the profile median.
            let z = standard_normal(&mut rng);
            let bw = (p.bw_median_mbps * 1e6 * (p.bw_sigma * z).exp()).clamp(2e5, 3e8);
            let state = PathState {
                base_rtt: (p.rtt_ms * MILLISECOND as f64) as u64,
                standing_queue: 0,
                jitter_max: p.jitter_ms * MILLISECOND,
                bottleneck_bps: bw as u64,
                loss: p.loss
                    + if rng.gen::<f64>() < 0.3 { rng.gen_range(0.001..0.02) } else { 0.0 },
            };
            let plan = workload.generate(&mut rng);
            let obs = simulate_session(&plan, &state, &mut rng);
            match session_hdratio(&obs, HD_GOODPUT_BPS).and_then(|v| v.hdratio()) {
                None => untested += 1,
                Some(h) if h >= 1.0 => full += 1,
                Some(h) if h <= 0.0 => zero += 1,
                Some(_) => partial += 1,
            }
        }
        let pct = |x: u32| format!("{:.0}%", 100.0 * x as f64 / n as f64);
        println!(
            "{:<18} {:>8} {:>8} {:>8} {:>9}",
            p.name,
            pct(full),
            pct(partial),
            pct(zero),
            pct(untested)
        );
    }
    println!("\n(HD = sustained 2.5 Mbps goodput, the paper's HD-video floor)");
}
