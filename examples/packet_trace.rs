//! Wire-level debugging: trace one transaction through a lossy path and
//! print the tcpdump-style transcript plus the estimator's verdict —
//! showing how a dropped packet turns into a recovery round-trip and how
//! the model accounts for it.
//!
//! Run with: `cargo run --release --example packet_trace`

use edgeperf::core::gtestable::gtestable_bps;
use edgeperf::core::tmodel::delivery_rate;
use edgeperf::core::{MILLISECOND, SECOND};
use edgeperf::netsim::{FlowSim, LossModel, PathConfig};
use edgeperf::tcp::TcpConfig;

fn main() {
    let mut path = PathConfig::ideal(4_000_000, 50 * MILLISECOND);
    path.loss = LossModel::bernoulli(0.08);

    let mut sim = FlowSim::new(TcpConfig::ns3_validation(10), path, 7);
    sim.enable_trace();
    sim.schedule_write(0, 60_000);
    let res = sim.run(60 * SECOND);

    let trace = res.trace.expect("tracing enabled");
    println!("── wire transcript (60 kB over 4 Mbps / 50 ms, 8% loss) ──");
    print!("{}", trace.render());
    let sends = trace.count(|e| matches!(e, edgeperf::netsim::TraceEvent::Send { .. }));
    println!(
        "\n{} segments sent, {} dropped, {} retransmitted",
        sends,
        trace.drops(),
        trace.retransmissions()
    );

    // What the server-side estimator concludes from the same flow:
    let w = res.writes[0];
    let (t0, wnic) = w.first_tx.unwrap();
    let t2 = w.t_second_last_ack.unwrap();
    let measured = w.bytes - w.last_packet_bytes.unwrap() as u64;
    let min_rtt = res.info.min_rtt.unwrap();
    let g_testable = gtestable_bps(measured, wnic as u64, min_rtt);
    let g = delivery_rate(measured, wnic as u64, min_rtt, t2 - t0);
    println!("\n── estimator view ──");
    println!("MinRTT            = {:.1} ms", min_rtt as f64 / 1e6);
    println!("Wnic              = {} bytes", wnic);
    println!("measured transfer = {} bytes in {:.1} ms", measured, (t2 - t0) as f64 / 1e6);
    println!("Gtestable         = {:.2} Mbps", g_testable / 1e6);
    match g {
        Some(rate) => println!(
            "delivery rate     = {:.2} Mbps (bottleneck 4 Mbps; loss/recovery cost the rest)",
            rate / 1e6
        ),
        None => println!("delivery rate     = faster than the model can bound"),
    }
}
