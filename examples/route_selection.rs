//! Performance-aware routing in one prefix: build a RIB with the paper's
//! §6.1 policy, measure the preferred route and an alternate while the
//! preferred interconnect suffers a congestion episode, and let the
//! opportunity analysis (with its statistical guardrails) decide whether
//! shifting traffic is justified.
//!
//! Run with: `cargo run --release --example route_selection`

use edgeperf::analysis::degradation::WindowStatus;
use edgeperf::analysis::{
    opportunity_events, AnalysisConfig, Dataset, GroupKey, OpportunityMetric, SessionRecord,
};
use edgeperf::core::{session_hdratio, HD_GOODPUT_BPS, MILLISECOND};
use edgeperf::netsim::PathState;
use edgeperf::routing::{AsPath, Asn, PopId, Prefix, Relationship, Rib, Route, RouteId};
use edgeperf::workload::WorkloadConfig;
use edgeperf::world::runner::simulate_session;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

fn main() {
    // ── The routing table ────────────────────────────────────────────
    let prefix = Prefix::new(0xC633_0000, 16); // 198.51.0.0/16
    let dest = Asn(64496);
    let mut rib = Rib::new();
    rib.insert(Route {
        id: RouteId(1),
        prefix,
        as_path: AsPath(vec![dest]),
        relationship: Relationship::PrivatePeer,
        capacity_bps: 40_000_000_000,
    });
    rib.insert(Route {
        id: RouteId(2),
        prefix,
        as_path: AsPath(vec![Asn(3356), dest]),
        relationship: Relationship::Transit,
        capacity_bps: 100_000_000_000,
    });
    let ranked = rib.ranked(&prefix);
    println!("policy ranking for {prefix}:");
    for (i, r) in ranked.iter().enumerate() {
        println!("  rank {i}: {} via AS-path of {}", r.relationship.label(), r.as_path.len());
    }

    // ── Measure both routes over 12 windows; the peer link congests in
    //    windows 4–7 (loss + standing queue) ────────────────────────────
    let group = GroupKey { pop: PopId(0), prefix, country: 0, continent: 2 };
    let mut rng = ChaCha12Rng::seed_from_u64(99);
    let workload = WorkloadConfig::default();
    let mut records: Vec<SessionRecord> = Vec::new();
    for window in 0..12u32 {
        let congested = (4..8).contains(&window);
        for rank in 0..2u8 {
            let (extra_queue, loss) = if rank == 0 && congested {
                (22.0 * MILLISECOND as f64, 0.02)
            } else {
                (0.0, 0.001)
            };
            let base = if rank == 0 { 20.0 } else { 26.0 }; // transit detours
            for _ in 0..60 {
                let state = PathState {
                    base_rtt: (base * MILLISECOND as f64) as u64,
                    standing_queue: extra_queue as u64,
                    jitter_max: 2 * MILLISECOND,
                    bottleneck_bps: rng.gen_range(8_000_000..40_000_000),
                    loss,
                };
                let plan = workload.generate(&mut rng);
                let obs = simulate_session(&plan, &state, &mut rng);
                let Some(min_rtt) = obs.min_rtt else { continue };
                records.push(SessionRecord {
                    group,
                    window,
                    route_rank: rank,
                    relationship: ranked[rank as usize].relationship,
                    longer_path: rank == 1,
                    more_prepended: false,
                    min_rtt_ms: min_rtt as f64 / MILLISECOND as f64,
                    hdratio: session_hdratio(&obs, HD_GOODPUT_BPS).and_then(|v| v.hdratio()),
                    bytes: obs.total_bytes(),
                });
            }
        }
    }

    // ── The opportunity analysis decides ─────────────────────────────
    let ds = Dataset::from_records(&records, 12);
    let cfg = AnalysisConfig::default();
    let g = ds.groups.values().next().unwrap();
    println!("\nper-window verdicts (threshold: 5 ms, CI-backed):");
    for (w, a) in opportunity_events(&cfg, g, OpportunityMetric::MinRtt, 5.0).iter().enumerate() {
        let verdict = match a.status {
            WindowStatus::Event => "SHIFT to alternate",
            WindowStatus::Quiet => "keep preferred",
            WindowStatus::Invalid => "insufficient data",
            WindowStatus::NoTraffic => "no traffic",
        };
        let diff = a
            .diff
            .map(|(d, lo, hi)| format!("{d:+.1} ms [{lo:+.1}, {hi:+.1}]"))
            .unwrap_or_default();
        println!("  window {w:>2}: {verdict:<20} {diff}");
    }
    println!("\nCongestion windows 4–7 should be the only SHIFT verdicts: the");
    println!("alternate is 6 ms slower in steady state, so the analysis must");
    println!("not chase noise — exactly the paper's §6 conclusion.");
}
