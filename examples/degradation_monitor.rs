//! A streaming degradation monitor: watch a user group's windows arrive,
//! maintain the baseline, and alert on statistically significant MinRTT
//! degradation — §5 of the paper as an operational tool, including the
//! t-digest the paper recommends for production streaming analytics.
//!
//! Run with: `cargo run --release --example degradation_monitor`

use edgeperf::stats::{diff_of_medians_ci, TDigest};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Simulated "today": 96 windows of session MinRTTs with an evening
/// congestion episode (windows 76–87 ≙ 19:00–22:00).
fn todays_windows(rng: &mut ChaCha12Rng) -> Vec<Vec<f64>> {
    (0..96)
        .map(|w| {
            let episode = (76..88).contains(&w);
            let center = 38.0 + if episode { 14.0 } else { 0.0 };
            (0..80)
                .map(|_| center + rng.gen_range(-4.0..4.0) + rng.gen::<f64>().powi(4) * 30.0)
                .collect()
        })
        .collect()
}

fn main() {
    let mut rng = ChaCha12Rng::seed_from_u64(7);
    let windows = todays_windows(&mut rng);

    // Baseline: the 10th percentile of window medians so far (warm-up on
    // the first quarter of the day), kept as the *sample set* of the
    // best window so CIs can be computed against it.
    let warmup = 24usize;
    let mut window_medians = TDigest::new(100.0);
    let mut best_window: Option<(f64, Vec<f64>)> = None;
    for w in &windows[..warmup] {
        let mut sorted = w.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let med = edgeperf::stats::quantile::median_sorted(&sorted);
        window_medians.insert(med);
        if best_window.as_ref().is_none_or(|(m, _)| med < *m) {
            best_window = Some((med, w.clone()));
        }
    }
    let (baseline_median, baseline_samples) = best_window.expect("warm-up data");
    println!(
        "baseline after warm-up: median {baseline_median:.1} ms (p10 of window medians: {:.1} ms)",
        window_medians.quantile(0.10)
    );

    // Stream the rest of the day.
    let threshold_ms = 5.0;
    let mut episode_windows = 0;
    println!("\nwindow  local  median   diff [95% CI]        verdict");
    for (i, w) in windows.iter().enumerate().skip(warmup) {
        let ci = diff_of_medians_ci(w, &baseline_samples, 0.95);
        let degraded = ci.lo > threshold_ms;
        if degraded {
            episode_windows += 1;
        }
        // Print around the interesting region only.
        if (70..92).contains(&i) {
            let hour = i as f64 * 0.25;
            println!(
                "{i:>6} {hour:>5.1}h {:>7.1} {:>+6.1} [{:+.1}, {:+.1}]   {}",
                ci.diff + baseline_median,
                ci.diff,
                ci.lo,
                ci.hi,
                if degraded { "DEGRADED" } else { "ok" }
            );
        }
    }
    println!(
        "\n{episode_windows} degraded windows detected (injected episode: 12 windows, 19:00–22:00)"
    );
    assert!((10..=14).contains(&episode_windows), "detector missed the episode");
}
